//! Write-ahead log: append-only frames that make the mutable write path
//! (heap insert/delete, B+-tree leaf updates) crash-recoverable.
//!
//! # Protocol
//!
//! Every logical operation is a [`WalOp`]: an ordered list of page
//! allocations, page frees, and byte-range page writes. [`Wal::commit`]
//! first appends one log frame per record plus a commit marker to the
//! in-memory log tail, *then* applies the page writes to buffer-pool
//! frames, stamping each frame with the commit LSN
//! ([`crate::buffer::PageMut::stamp_lsn`]). The pool's
//! [`crate::buffer::LsnGate`] guarantees the log reaches disk before any
//! stamped page does — WAL-before-page — so the disk can only ever hold:
//!
//! * pages whose covering log records are durable (redo replays them
//!   idempotently), and
//! * no page effects of operations the log does not fully record
//!   (nothing to undo — recovery is redo-only).
//!
//! [`Wal::flush`] is the durability point: after it returns, every
//! committed operation survives a crash.
//!
//! # Frame format
//!
//! Frames are packed into 4 KiB log pages and never span pages; a zero
//! length dword marks end-of-page padding.
//!
//! ```text
//! [0..4)    u32 LE  total frame length (header + payload + checksum)
//! [4..12)   u64 LE  LSN — strictly consecutive from 1
//! [12]      u8      kind: 1 write, 2 commit, 3 alloc, 4 free
//! [13..L-4)         payload (kind-specific, below)
//! [L-4..L)  u32 LE  FNV-1a checksum over bytes [0..L-4)
//! ```
//!
//! Payloads: `write` = file u32, page u32, off u16, len u16, bytes (split
//! into multiple frames when a range exceeds [`MAX_CHUNK`]); `alloc` /
//! `free` = file u32, page u32; `commit` = operation id u64.
//!
//! # Torn-tail detection
//!
//! The log tail page is rewritten in place as frames accumulate, so a
//! crash can leave it half-new, half-stale. [`recover`] replays frames in
//! order and stops at the first frame whose checksum fails, whose length
//! is structurally impossible, or whose LSN is not exactly the
//! predecessor's plus one — the strict LSN chain means a stale remnant of
//! an earlier tail rewrite can never alias as fresh data. Complete frames
//! of an operation whose commit marker did not survive are discarded
//! (the operation never happened), the torn tail is zeroed, and the free
//! list is rebuilt from the surviving alloc/free frames.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::buffer::{BufferPool, LsnGate, PageMut, PoolError};
use crate::freelist::FreeList;
use crate::page::{FileId, PageBuf, PageId, PAGE_SIZE};
use crate::stats::WalStats;

const FRAME_HEADER: usize = 4 + 8 + 1;
const FRAME_TRAILER: usize = 4;
const WRITE_FIXED: usize = 4 + 4 + 2 + 2;

const KIND_WRITE: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_ALLOC: u8 = 3;
const KIND_FREE: u8 = 4;

/// Largest byte range one `write` frame can carry; longer ranges (up to a
/// full page image) are split across consecutive frames of the same
/// operation, which replays atomically anyway.
pub const MAX_CHUNK: usize = PAGE_SIZE - FRAME_HEADER - FRAME_TRAILER - WRITE_FIXED;

/// FNV-1a folded to 32 bits — the same integrity idiom as the packed page
/// codec ([`crate::codec`]): torn and stale log bytes become detection,
/// never silently wrong replay.
fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h ^ (h >> 32)) as u32
}

/// One logged record of a [`WalOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum WalRec {
    /// `bytes` replace the page's contents at `off` (redo = reapply).
    Write {
        pid: PageId,
        off: u16,
        bytes: Vec<u8>,
    },
    /// The operation brings `pid` into use: a fresh page at the file's
    /// end, or a reclaimed free-list page.
    Alloc(PageId),
    /// The operation releases `pid` to the free list.
    Free(PageId),
}

/// Builder for one atomic logical operation: records are logged and
/// replayed in insertion order, so allocations must precede writes to the
/// pages they introduce.
#[derive(Debug, Default)]
pub struct WalOp {
    recs: Vec<WalRec>,
}

impl WalOp {
    /// An empty operation.
    pub fn new() -> Self {
        WalOp::default()
    }

    /// Whether no records were added.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Logs `bytes` replacing `pid`'s contents at byte offset `off`.
    /// Ranges longer than [`MAX_CHUNK`] split into consecutive frames.
    pub fn page_write(&mut self, pid: PageId, off: usize, bytes: &[u8]) {
        assert!(
            off + bytes.len() <= PAGE_SIZE,
            "page write beyond page bounds"
        );
        let mut at = 0;
        while at < bytes.len() {
            let n = (bytes.len() - at).min(MAX_CHUNK);
            self.recs.push(WalRec::Write {
                pid,
                off: (off + at) as u16,
                bytes: bytes[at..at + n].to_vec(),
            });
            at += n;
        }
    }

    /// Logs a full page image for `pid`.
    pub fn page_image(&mut self, pid: PageId, buf: &PageBuf) {
        self.page_write(pid, 0, buf);
    }

    /// Logs that the operation brings `pid` into use.
    pub fn alloc(&mut self, pid: PageId) {
        self.recs.push(WalRec::Alloc(pid));
    }

    /// Logs that the operation releases `pid` to the free list.
    pub fn free(&mut self, pid: PageId) {
        self.recs.push(WalRec::Free(pid));
    }
}

struct WalState {
    file: FileId,
    /// The in-memory tail page image (zeroed beyond `used`).
    tail: Box<PageBuf>,
    used: usize,
    /// Full pages sealed but not yet flushed; page numbers run
    /// `tail_page - queue.len() .. tail_page`.
    queue: VecDeque<Box<PageBuf>>,
    /// Page number the current tail buffer occupies when flushed.
    tail_page: u32,
    /// Pages currently allocated to the log file on disk.
    disk_pages: u32,
    /// LSN the next frame receives (strictly consecutive from 1).
    next_lsn: u64,
    /// Highest LSN durable on disk.
    durable_lsn: u64,
    /// Operation id the next commit receives.
    next_op: u64,
    freelist: FreeList,
    stats: WalStats,
}

impl WalState {
    fn fresh(file: FileId) -> Self {
        WalState {
            file,
            tail: Box::new([0u8; PAGE_SIZE]),
            used: 0,
            queue: VecDeque::new(),
            tail_page: 0,
            disk_pages: 0,
            next_lsn: 1,
            durable_lsn: 0,
            next_op: 1,
            freelist: FreeList::new(),
            stats: WalStats::default(),
        }
    }

    /// Appends one frame to the buffered tail, sealing the tail page first
    /// if the frame does not fit. Returns the frame's LSN.
    fn append_frame(&mut self, kind: u8, payload: &[u8]) -> u64 {
        let need = FRAME_HEADER + payload.len() + FRAME_TRAILER;
        debug_assert!(need <= PAGE_SIZE, "oversized WAL frame");
        if PAGE_SIZE - self.used < need {
            // Seal: bytes beyond `used` are already zero (end-of-page
            // padding for the reader).
            let full = std::mem::replace(&mut self.tail, Box::new([0u8; PAGE_SIZE]));
            self.queue.push_back(full);
            self.tail_page += 1;
            self.used = 0;
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let at = self.used;
        let buf = &mut self.tail[at..at + need];
        buf[0..4].copy_from_slice(&(need as u32).to_le_bytes());
        buf[4..12].copy_from_slice(&lsn.to_le_bytes());
        buf[12] = kind;
        buf[FRAME_HEADER..FRAME_HEADER + payload.len()].copy_from_slice(payload);
        let sum = checksum(&buf[..need - FRAME_TRAILER]);
        buf[need - FRAME_TRAILER..].copy_from_slice(&sum.to_le_bytes());
        self.used += need;
        self.stats.frames += 1;
        lsn
    }

    fn append_rec(&mut self, rec: &WalRec) -> u64 {
        match rec {
            WalRec::Write { pid, off, bytes } => {
                let mut payload = Vec::with_capacity(WRITE_FIXED + bytes.len());
                payload.extend_from_slice(&pid.file.0.to_le_bytes());
                payload.extend_from_slice(&pid.page.to_le_bytes());
                payload.extend_from_slice(&off.to_le_bytes());
                payload.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                payload.extend_from_slice(bytes);
                self.append_frame(KIND_WRITE, &payload)
            }
            WalRec::Alloc(pid) | WalRec::Free(pid) => {
                let mut payload = [0u8; 8];
                payload[..4].copy_from_slice(&pid.file.0.to_le_bytes());
                payload[4..].copy_from_slice(&pid.page.to_le_bytes());
                let kind = if matches!(rec, WalRec::Alloc(_)) {
                    KIND_ALLOC
                } else {
                    KIND_FREE
                };
                self.append_frame(kind, &payload)
            }
        }
    }

    /// Writes every buffered log page to disk, in order. On an I/O error
    /// the transferred prefix stays accounted (a retry resumes there) and
    /// `durable_lsn` is left conservative.
    fn flush_buffered(&mut self, pool: &BufferPool) -> Result<(), PoolError> {
        while let Some(img) = self.queue.pop_front() {
            let pageno = self.tail_page - (self.queue.len() + 1) as u32;
            if let Err(e) = self.write_log_page(pool, pageno, &img) {
                self.queue.push_front(img);
                return Err(e);
            }
            self.stats.page_writes += 1;
        }
        if self.used > 0 {
            let img = std::mem::replace(&mut self.tail, Box::new([0u8; PAGE_SIZE]));
            let res = self.write_log_page(pool, self.tail_page, &img);
            self.tail = img;
            res?;
            self.stats.page_writes += 1;
        }
        self.durable_lsn = self.next_lsn - 1;
        Ok(())
    }

    fn write_log_page(
        &mut self,
        pool: &BufferPool,
        pageno: u32,
        img: &PageBuf,
    ) -> Result<(), PoolError> {
        if pageno >= self.disk_pages {
            debug_assert_eq!(pageno, self.disk_pages, "log pages flush in order");
            let got = pool.append_page_through(self.file, img)?;
            debug_assert_eq!(got, pageno, "log file written by someone else");
            self.disk_pages += 1;
        } else {
            pool.write_page_through(PageId::new(self.file, pageno), img)?;
        }
        Ok(())
    }
}

struct WalShared {
    state: Mutex<WalState>,
}

impl LsnGate for WalShared {
    fn flush_up_to(&self, pool: &BufferPool, lsn: u64) -> Result<(), PoolError> {
        let mut st = self.state.lock().unwrap();
        if st.durable_lsn >= lsn {
            return Ok(());
        }
        st.stats.gate_flushes += 1;
        st.flush_buffered(pool)
    }
}

/// The write-ahead log of one buffer pool. Cheap to clone conceptually
/// (internally `Arc`-shared with the pool's registered gate), but handed
/// around by reference: one `Wal` per pool.
pub struct Wal {
    shared: Arc<WalShared>,
}

impl Wal {
    /// Creates a fresh log in a new file of `pool`'s disk and registers
    /// its [`LsnGate`] with the pool.
    pub fn create(pool: &BufferPool) -> Self {
        let file = pool.create_file();
        let wal = Wal {
            shared: Arc::new(WalShared {
                state: Mutex::new(WalState::fresh(file)),
            }),
        };
        pool.set_lsn_gate(Some(wal.gate()));
        wal
    }

    /// The gate object to register with a pool (done by [`Wal::create`]
    /// and [`recover`] already).
    pub fn gate(&self) -> Arc<dyn LsnGate> {
        Arc::clone(&self.shared) as Arc<dyn LsnGate>
    }

    /// The log's file id — what [`recover`] needs after a restart.
    pub fn file(&self) -> FileId {
        self.shared.state.lock().unwrap().file
    }

    /// Highest LSN durable on disk.
    pub fn durable_lsn(&self) -> u64 {
        self.shared.state.lock().unwrap().durable_lsn
    }

    /// Highest LSN assigned so far (0 when the log is empty).
    pub fn last_lsn(&self) -> u64 {
        self.shared.state.lock().unwrap().next_lsn - 1
    }

    /// Activity counters.
    pub fn stats(&self) -> WalStats {
        self.shared.state.lock().unwrap().stats
    }

    /// Takes the lowest free page of `file` off the free list, if any.
    /// The caller must log the reuse with [`WalOp::alloc`] in the same
    /// operation that writes the page.
    pub fn acquire_free_page(&self, file: FileId) -> Option<u32> {
        self.shared
            .state
            .lock()
            .unwrap()
            .freelist
            .acquire(file)
            .inspect(|&p| debug_assert!(p < u32::MAX))
    }

    /// Free pages currently tracked for `file`, ascending.
    pub fn free_pages_of(&self, file: FileId) -> Vec<u32> {
        self.shared.state.lock().unwrap().freelist.pages_of(file)
    }

    /// Total free pages tracked across all files.
    pub fn freelist_len(&self) -> usize {
        self.shared.state.lock().unwrap().freelist.len()
    }

    /// Commits one logical operation: logs every record plus a commit
    /// marker (buffered — durability comes from [`Wal::flush`] or the
    /// pool's gate), updates the free list, then applies the page writes
    /// to pool frames stamped with the commit LSN. Returns that LSN.
    ///
    /// On an I/O error (allocation or page fetch) the operation is fully
    /// logged but possibly partially applied in memory; the caller must
    /// treat the store as failed and [`recover`] before further use —
    /// exactly what the crash harness does.
    pub fn commit(&self, pool: &BufferPool, op: WalOp) -> Result<u64, PoolError> {
        assert!(!op.is_empty(), "committing an empty WAL operation");
        let commit_lsn = {
            let mut st = self.shared.state.lock().unwrap();
            let op_id = st.next_op;
            st.next_op += 1;
            for rec in &op.recs {
                st.append_rec(rec);
            }
            let lsn = st.append_frame(KIND_COMMIT, &op_id.to_le_bytes());
            for rec in &op.recs {
                match rec {
                    WalRec::Free(pid) => {
                        st.freelist.release(*pid);
                    }
                    WalRec::Alloc(pid) => {
                        // Reclaims the page if the caller took it off the
                        // free list out-of-band (then this is a no-op) or
                        // if a replayed history freed it earlier.
                        st.freelist.reclaim(*pid);
                    }
                    WalRec::Write { .. } => {}
                }
            }
            st.stats.commits += 1;
            lsn
        };
        // Apply outside the log lock: fetching frames may evict, and
        // eviction's gate takes the log lock.
        apply_records(pool, &op.recs, commit_lsn)?;
        Ok(commit_lsn)
    }

    /// Makes every committed operation durable (the harness's per-op
    /// durability point; group commit amounts to calling this less often).
    pub fn flush(&self, pool: &BufferPool) -> Result<(), PoolError> {
        self.shared.state.lock().unwrap().flush_buffered(pool)
    }
}

/// Ensures `pid` exists on disk, appending zeroed pages as needed.
fn ensure_allocated(pool: &BufferPool, pid: PageId) -> Result<(), PoolError> {
    while pool.num_pages(pid.file) <= pid.page {
        pool.allocate_page(pid.file)?;
    }
    Ok(())
}

/// Applies an operation's records to pool frames: allocations first reach
/// the disk's page accounting, writes land in frames stamped with `lsn`.
/// Shared between the forward path ([`Wal::commit`]) and replay.
fn apply_records(pool: &BufferPool, recs: &[WalRec], lsn: u64) -> Result<(), PoolError> {
    for rec in recs {
        match rec {
            WalRec::Alloc(pid) => ensure_allocated(pool, *pid)?,
            WalRec::Free(_) => {}
            WalRec::Write { pid, off, bytes } => {
                let mut g: PageMut<'_> = pool.write_page(*pid)?;
                let off = *off as usize;
                g[off..off + bytes.len()].copy_from_slice(bytes);
                g.stamp_lsn(lsn);
            }
        }
    }
    Ok(())
}

/// What [`recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Operations replayed (commit marker present and intact).
    pub ops_applied: u64,
    /// Id of the last committed operation (0 when none survived).
    pub last_op: u64,
    /// Valid frames scanned, committed or not.
    pub frames_scanned: u64,
    /// Whether the scan stopped at a torn frame (checksum / structure /
    /// LSN-chain violation) rather than the clean end of the log.
    pub torn_tail: bool,
    /// Whether complete frames of an uncommitted trailing operation were
    /// discarded.
    pub discarded_tail: bool,
    /// Free pages tracked after the free-list rebuild.
    pub free_pages: usize,
}

/// Replays the log in `wal_file` against `pool`: committed operations are
/// reapplied in LSN order (idempotent redo), the torn tail is truncated
/// (zero-filled), the free list is rebuilt, every replayed page is
/// flushed, and a ready-to-append [`Wal`] positioned after the last valid
/// frame is returned with its gate registered.
pub fn recover(pool: &BufferPool, wal_file: FileId) -> Result<(Wal, RecoveryReport), PoolError> {
    let npages = pool.num_pages(wal_file);
    let mut st = WalState::fresh(wal_file);
    st.disk_pages = npages;

    let mut report = RecoveryReport {
        ops_applied: 0,
        last_op: 0,
        frames_scanned: 0,
        torn_tail: false,
        discarded_tail: false,
        free_pages: 0,
    };
    let mut pending: Vec<WalRec> = Vec::new();
    let mut last_lsn = 0u64;
    // Position just past the last valid frame: page number, offset, and
    // that page's valid prefix.
    let mut tail_page = 0u32;
    let mut tail_used = 0usize;
    let mut tail_img = Box::new([0u8; PAGE_SIZE]);

    'pages: for p in 0..npages {
        let mut buf = [0u8; PAGE_SIZE];
        pool.read_page_through(PageId::new(wal_file, p), &mut buf)?;
        let mut off = 0usize;
        loop {
            if off + FRAME_HEADER + FRAME_TRAILER > PAGE_SIZE {
                break; // page exhausted; frames continue on the next page
            }
            let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
            if len == 0 {
                break; // end-of-page padding
            }
            if len < FRAME_HEADER + FRAME_TRAILER || off + len > PAGE_SIZE {
                report.torn_tail = true;
                break 'pages;
            }
            let stored = u32::from_le_bytes(
                buf[off + len - FRAME_TRAILER..off + len]
                    .try_into()
                    .unwrap(),
            );
            if stored != checksum(&buf[off..off + len - FRAME_TRAILER]) {
                report.torn_tail = true;
                break 'pages;
            }
            let lsn = u64::from_le_bytes(buf[off + 4..off + 12].try_into().unwrap());
            if lsn != last_lsn + 1 {
                // A stale remnant of an earlier tail rewrite: its checksum
                // holds but its LSN breaks the strict chain.
                report.torn_tail = true;
                break 'pages;
            }
            let kind = buf[off + 12];
            let payload = &buf[off + FRAME_HEADER..off + len - FRAME_TRAILER];
            match decode_frame(kind, payload) {
                None => {
                    report.torn_tail = true;
                    break 'pages;
                }
                Some(Decoded::Rec(rec)) => pending.push(rec),
                Some(Decoded::Commit(op_id)) => {
                    // The operation is fully logged: redo it. Free-list
                    // effects apply in record order alongside the writes.
                    for rec in &pending {
                        match rec {
                            WalRec::Free(pid) => {
                                st.freelist.release(*pid);
                            }
                            WalRec::Alloc(pid) => {
                                st.freelist.reclaim(*pid);
                            }
                            WalRec::Write { .. } => {}
                        }
                    }
                    apply_records(pool, &pending, lsn)?;
                    pending.clear();
                    report.ops_applied += 1;
                    report.last_op = op_id;
                }
            }
            last_lsn = lsn;
            report.frames_scanned += 1;
            off += len;
            tail_page = p;
            tail_used = off;
            tail_img[..off].copy_from_slice(&buf[..off]);
            tail_img[off..].fill(0);
        }
    }

    report.discarded_tail = !pending.is_empty();

    // Truncate: rewrite the tail page as exactly its valid prefix and
    // zero-fill everything after it, so a future recovery (and the
    // resumed log) never meets the torn bytes again.
    if npages > 0 {
        pool.write_page_through(PageId::new(wal_file, tail_page), &tail_img)?;
        let zero = [0u8; PAGE_SIZE];
        for p in tail_page + 1..npages {
            pool.write_page_through(PageId::new(wal_file, p), &zero)?;
        }
    }

    // Push every replayed page to disk: recovery ends with a clean,
    // fully durable state (the twin-comparison baseline).
    pool.flush_all()?;

    st.tail = tail_img;
    st.used = tail_used;
    st.tail_page = tail_page;
    st.next_lsn = last_lsn + 1;
    st.durable_lsn = last_lsn;
    st.next_op = report.last_op + 1;
    report.free_pages = st.freelist.len();

    let wal = Wal {
        shared: Arc::new(WalShared {
            state: Mutex::new(st),
        }),
    };
    pool.set_lsn_gate(Some(wal.gate()));
    Ok((wal, report))
}

enum Decoded {
    Rec(WalRec),
    Commit(u64),
}

fn decode_frame(kind: u8, payload: &[u8]) -> Option<Decoded> {
    let pid_of = |p: &[u8]| {
        PageId::new(
            FileId(u32::from_le_bytes(p[..4].try_into().unwrap())),
            u32::from_le_bytes(p[4..8].try_into().unwrap()),
        )
    };
    match kind {
        KIND_WRITE => {
            if payload.len() < WRITE_FIXED {
                return None;
            }
            let pid = pid_of(payload);
            let off = u16::from_le_bytes(payload[8..10].try_into().unwrap());
            let n = u16::from_le_bytes(payload[10..12].try_into().unwrap()) as usize;
            if payload.len() != WRITE_FIXED + n || off as usize + n > PAGE_SIZE {
                return None;
            }
            Some(Decoded::Rec(WalRec::Write {
                pid,
                off,
                bytes: payload[WRITE_FIXED..].to_vec(),
            }))
        }
        KIND_ALLOC | KIND_FREE => {
            if payload.len() != 8 {
                return None;
            }
            let pid = pid_of(payload);
            Some(Decoded::Rec(if kind == KIND_ALLOC {
                WalRec::Alloc(pid)
            } else {
                WalRec::Free(pid)
            }))
        }
        KIND_COMMIT => {
            if payload.len() != 8 {
                return None;
            }
            Some(Decoded::Commit(u64::from_le_bytes(
                payload.try_into().unwrap(),
            )))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{Disk, MemBackend};
    use crate::stats::CostModel;

    fn pool(frames: usize) -> BufferPool {
        let disk = Disk::new(Box::new(MemBackend::new()), CostModel::free());
        BufferPool::new(disk, frames)
    }

    fn op_writing(pid: PageId, off: usize, bytes: &[u8], alloc: bool) -> WalOp {
        let mut op = WalOp::new();
        if alloc {
            op.alloc(pid);
        }
        op.page_write(pid, off, bytes);
        op
    }

    #[test]
    fn commit_apply_flush_recover_round_trip() {
        let p = pool(8);
        let wal = Wal::create(&p);
        let data = p.create_file();
        let pid = PageId::new(data, 0);
        wal.commit(&p, op_writing(pid, 10, b"hello wal", true))
            .unwrap();
        wal.flush(&p).unwrap();
        assert_eq!(wal.durable_lsn(), wal.last_lsn());
        // The page is applied in the pool...
        assert_eq!(&p.read_page(pid).unwrap()[10..19], b"hello wal");
        // ...and replays identically into a cold pool sharing the disk.
        p.flush_all().unwrap();
        let stats = wal.stats();
        assert_eq!(stats.commits, 1);
        assert!(stats.frames >= 3, "alloc + write + commit");
    }

    #[test]
    fn gate_makes_log_durable_before_page_writeback() {
        // One frame of budget: applying a logged write and then touching a
        // second page forces eviction of the first — the gate must flush
        // the log before that write-back.
        let p = pool(1);
        let wal = Wal::create(&p);
        let data = p.create_file();
        let pid = PageId::new(data, 0);
        wal.commit(&p, op_writing(pid, 0, &[7u8; 16], true))
            .unwrap();
        assert_eq!(wal.durable_lsn(), 0, "commit alone is not durable");
        let other = PageId::new(data, 1);
        let mut op = WalOp::new();
        op.alloc(other);
        op.page_write(other, 0, &[9u8; 4]);
        wal.commit(&p, op).unwrap();
        // The second commit's apply evicted page 0; the gate flushed.
        assert!(wal.durable_lsn() >= 3, "gate flushed the log");
        assert!(wal.stats().gate_flushes >= 1);
        let mut img = [0u8; PAGE_SIZE];
        p.read_page_through(pid, &mut img).unwrap();
        assert_eq!(&img[..16], &[7u8; 16]);
    }

    #[test]
    fn recover_replays_committed_ops_and_truncates_garbage() {
        let p = pool(8);
        let wal = Wal::create(&p);
        let wal_file = wal.file();
        let data = p.create_file();
        for i in 0..5u8 {
            let pid = PageId::new(data, u32::from(i));
            wal.commit(&p, op_writing(pid, 0, &[i + 1; 64], true))
                .unwrap();
        }
        wal.flush(&p).unwrap();
        let committed_lsn = wal.durable_lsn();
        drop(wal);
        // Simulate a crash: the log reached disk, the data pages did not
        // (8 frames of budget — no eviction pressure, so no write-back).
        p.set_lsn_gate(None);
        let mut img = [0u8; PAGE_SIZE];
        p.read_page_through(PageId::new(data, 0), &mut img).unwrap();
        assert_eq!(img[0], 0, "data page not yet written back");
        // A true restart (cold pool over the surviving disk) is exercised
        // end-to-end by tests/crash_recovery.rs; here recovery replays
        // into the same pool, which must converge to the same bytes.
        let (wal2, report) = recover(&p, wal_file).unwrap();
        assert_eq!(report.ops_applied, 5);
        assert_eq!(report.last_op, 5);
        assert!(!report.torn_tail);
        assert!(!report.discarded_tail);
        assert_eq!(wal2.durable_lsn(), committed_lsn);
        p.read_page_through(PageId::new(data, 4), &mut img).unwrap();
        assert_eq!(img[0], 5, "replayed and flushed");
        // The recovered log accepts new commits and numbers them after
        // the replayed history: one write frame plus the commit marker.
        let pid = PageId::new(data, 0);
        let lsn = wal2
            .commit(&p, op_writing(pid, 0, &[0xAB; 8], false))
            .unwrap();
        assert_eq!(lsn, committed_lsn + 2);
    }

    #[test]
    fn torn_tail_is_detected_and_discarded() {
        let p = pool(8);
        let wal = Wal::create(&p);
        let wal_file = wal.file();
        let data = p.create_file();
        let pid = PageId::new(data, 0);
        wal.commit(&p, op_writing(pid, 0, &[1u8; 32], true))
            .unwrap();
        wal.flush(&p).unwrap();
        wal.commit(&p, op_writing(pid, 32, &[2u8; 32], false))
            .unwrap();
        wal.flush(&p).unwrap();
        // Tear the log tail page: keep the first committed op's bytes,
        // corrupt a byte inside the second op's frames.
        let mut img = [0u8; PAGE_SIZE];
        let tail = PageId::new(wal_file, 0);
        p.read_page_through(tail, &mut img).unwrap();
        // Find the second op's first frame: scan past op 1's three frames.
        let mut off = 0usize;
        for _ in 0..3 {
            let len = u32::from_le_bytes(img[off..off + 4].try_into().unwrap()) as usize;
            off += len;
        }
        img[off + FRAME_HEADER + 2] ^= 0xFF;
        p.write_page_through(tail, &img).unwrap();
        let (wal2, report) = recover(&p, wal_file).unwrap();
        assert_eq!(report.ops_applied, 1, "only the intact op survives");
        assert!(report.torn_tail);
        // The torn bytes were zeroed: recovering again is clean.
        drop(wal2);
        let (_, again) = recover(&p, wal_file).unwrap();
        assert_eq!(again.ops_applied, 1);
        assert!(!again.torn_tail, "truncation removed the torn tail");
    }

    #[test]
    fn free_list_rebuild_follows_alloc_free_frames() {
        let p = pool(8);
        let wal = Wal::create(&p);
        let wal_file = wal.file();
        let data = p.create_file();
        for page in 0..3 {
            wal.commit(&p, op_writing(PageId::new(data, page), 0, &[1u8; 8], true))
                .unwrap();
        }
        // Free page 1, then reuse it.
        let mut op = WalOp::new();
        op.free(PageId::new(data, 1));
        op.page_write(PageId::new(data, 1), 0, &0u32.to_le_bytes());
        wal.commit(&p, op).unwrap();
        assert_eq!(wal.free_pages_of(data), vec![1]);
        let got = wal.acquire_free_page(data);
        assert_eq!(got, Some(1));
        let mut op = WalOp::new();
        op.alloc(PageId::new(data, 1));
        op.page_write(PageId::new(data, 1), 0, &[3u8; 8]);
        wal.commit(&p, op).unwrap();
        assert_eq!(wal.freelist_len(), 0);
        wal.flush(&p).unwrap();
        let (wal2, report) = recover(&p, wal_file).unwrap();
        assert_eq!(report.free_pages, 0, "freed then reused: not free");
        assert_eq!(wal2.freelist_len(), 0);
        // A free without reuse survives recovery as free.
        let mut op = WalOp::new();
        op.free(PageId::new(data, 2));
        op.page_write(PageId::new(data, 2), 0, &0u32.to_le_bytes());
        wal2.commit(&p, op).unwrap();
        wal2.flush(&p).unwrap();
        let (wal3, report) = recover(&p, wal_file).unwrap();
        assert_eq!(report.free_pages, 1);
        assert_eq!(wal3.free_pages_of(data), vec![2]);
    }

    #[test]
    fn frames_span_many_pages_and_large_images_split() {
        let p = pool(8);
        let wal = Wal::create(&p);
        let wal_file = wal.file();
        let data = p.create_file();
        // Full page images force chunked frames; enough of them roll the
        // log over several pages.
        for page in 0..6u32 {
            let img = [page as u8 + 1; PAGE_SIZE];
            let mut op = WalOp::new();
            op.alloc(PageId::new(data, page));
            op.page_image(PageId::new(data, page), &img);
            wal.commit(&p, op).unwrap();
        }
        wal.flush(&p).unwrap();
        assert!(p.num_pages(wal_file) > 1, "log rolled over pages");
        let (_, report) = recover(&p, wal_file).unwrap();
        assert_eq!(report.ops_applied, 6);
        assert!(!report.torn_tail);
        let mut img = [0u8; PAGE_SIZE];
        p.read_page_through(PageId::new(data, 5), &mut img).unwrap();
        assert!(img.iter().all(|&b| b == 6));
    }
}
