//! # pbitree-storage — a Minibase-style paged storage engine
//!
//! The ICDE 2003 PBiTree paper runs its evaluation on Minibase: a storage
//! manager operating on raw disk, a buffer manager with a bounded frame
//! budget, and heap files of fixed-width tuples. This crate reimplements
//! that substrate in Rust:
//!
//! * [`disk`] — pluggable disk backends behind [`disk::DiskBackend`]:
//!   a real-file backend and an in-memory backend. Every page transfer is
//!   classified sequential vs. random and charged against a configurable
//!   [`stats::CostModel`], so experiments report deterministic simulated
//!   I/O time next to raw page counts (the paper's numbers are I/O-bound;
//!   see `DESIGN.md`, substitution 1).
//! * [`buffer`] — a clock-replacement buffer pool with pin/unpin guards and
//!   a hard frame budget `b`, the paper's `NumBufferPages`.
//! * [`heap`] — unordered files of fixed-width records
//!   ([`record::FixedRecord`]) with append writers and sequential scanners.
//! * [`sort`] — external multiway merge sort (run formation + k-way merge)
//!   operating entirely through the buffer pool, used by the "sort on the
//!   fly" baselines (MPMGJN/StackTree/ADB+ over unsorted inputs).
//! * [`util::hash`] — an FxHash-style integer hasher; join hash tables are
//!   keyed by 8-byte codes, where SipHash would dominate CPU cost.
//!
//! The buffer pool is thread-safe (`Send + Sync`): the page table is
//! lock-striped across shards, frame metadata sits behind per-frame
//! mutexes, counters are atomic, and page guards are `Send`, so the join
//! layer can fan partition work out over scoped threads sharing one frame
//! budget. Single-threaded use (the default, `threads = 1`) behaves
//! exactly like the classic sequential pool and stays deterministic.

pub mod access;
pub mod buffer;
pub mod codec;
pub mod disk;
pub mod fault;
pub mod freelist;
pub mod heap;
pub mod page;
pub mod record;
pub mod shard;
pub mod sort;
pub mod stats;
pub mod util;
pub mod wal;
pub mod zone;

pub use access::{compress_default, AccessPattern, ScanOptions, DEFAULT_IO_DEPTH};
pub use buffer::{
    BufferPool, LsnGate, PageMut, PageRef, PoolError, PoolStats, StatsSnapshot, SHARD_COUNT,
};
pub use codec::{transfer_bytes, PACKED_FLAG, PACKED_HEADER};
pub use disk::{
    BatchError, Disk, DiskBackend, FileBackend, IoError, IoErrorKind, MemBackend, SharedBackend,
};
pub use fault::{FaultBackend, FaultConfig, FaultHandle};
pub use freelist::FreeList;
pub use heap::{records_per_page, HeapFile, HeapScan, HeapWriter, ScanPos};
pub use page::{FileId, PageBuf, PageId, PAGE_SIZE};
pub use record::{FixedRecord, RecordParts};
pub use shard::ShardPlan;
pub use sort::{external_sort, external_sort_with};
pub use stats::{CostModel, IoStats, WalStats};
pub use wal::{recover, RecoveryReport, Wal, WalOp};
pub use zone::{FileZones, ScanFilter, ZoneEntry};
