//! Packed heap-page codec: frame-of-reference + delta + varint coding for
//! records that decompose into `(start, height, tag)` parts
//! ([`crate::record::FixedRecord::to_parts`]).
//!
//! PBiTree elements are ideal for this: files are overwhelmingly written in
//! document order, so consecutive region starts differ by small amounts; the
//! region *end* is fully determined by `(start, height)` (Lemma 3), so it is
//! never stored; heights fit in 6 bits; tags are small interned ids. A page
//! that stores 12-byte elements raw typically packs them into ~3 bytes each,
//! tripling the records per page — and every operator's `page_reads` drop
//! proportionally at identical join results.
//!
//! # On-disk layout of a packed page
//!
//! ```text
//! [0..4)    u32 LE  PACKED_FLAG | n        (record count, high bit set)
//! [4..8)    u32 LE  payload length P
//! [8..12)   u32 LE  checksum over (n, base, payload)
//! [12..20)  u64 LE  base — the first record's start
//! [20..24)  u32 LE  D — length of the delta section within the payload
//! [24..24+P)        payload:
//!     [0..D)        n-1 zigzag varints: start[i] - start[i-1] (wrapping)
//!     [D..D+H)      6-bit packed heights, H = ceil(6n / 8)
//!     [D+H..P)      n varint tags
//! ```
//!
//! A raw page's count dword never has [`PACKED_FLAG`] set (raw counts are
//! bounded by `PAGE_SIZE / R::SIZE`), so the flag alone selects the
//! encoding and raw pages stay byte-identical to the uncompressed format.
//!
//! # Validation
//!
//! Decoding trusts nothing: the record count, section lengths, every varint
//! terminator, the height range, the checksum, and the reassembled records
//! themselves ([`crate::record::FixedRecord::from_parts`]) are all checked,
//! and any inconsistency surfaces as [`PoolError::Corrupt`] naming the page
//! — a torn or bit-flipped packed page can never decode to silently wrong
//! records. The checksum mixes in `n` and `base` so header and payload
//! corruption are both caught.

use crate::buffer::PoolError;
use crate::page::{PageId, PAGE_SIZE};
use crate::record::{FixedRecord, RecordParts};

/// High bit of the count dword: set on packed pages, never on raw pages.
pub const PACKED_FLAG: u32 = 0x8000_0000;

/// Bytes of packed-page header preceding the payload.
pub const PACKED_HEADER: usize = 24;

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Bytes a LEB128 varint of `v` occupies (1..=10).
#[inline]
fn varint_len(v: u64) -> usize {
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7)
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads one varint from `buf` at `*at`, advancing it. `None` on a
/// truncated or over-long (> 10 byte) encoding.
#[inline]
fn get_varint(buf: &[u8], at: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*at)?;
        *at += 1;
        if shift == 63 && b > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// FNV-1a over `(n, base, payload)`, folded to 32 bits. Not cryptographic —
/// it exists to turn torn writes and stray bit flips into
/// [`PoolError::Corrupt`] instead of plausible-looking records.
fn checksum(n: u32, base: u64, payload: &[u8]) -> u32 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut mix = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in n.to_le_bytes() {
        mix(b);
    }
    for b in base.to_le_bytes() {
        mix(b);
    }
    for &b in payload {
        mix(b);
    }
    (h ^ (h >> 32)) as u32
}

/// The bytes a page image actually occupies on the wire: header plus
/// payload for a structurally plausible packed page, the full
/// [`PAGE_SIZE`] otherwise. This feeds the disk layer's per-byte
/// transfer cost — a packed page streams only its sealed bytes, which is
/// how compression shows up in simulated *time* and not just page
/// counts. Infallible by design: cost accounting must never reject a
/// page (corruption is the buffer pool's business to diagnose), so a
/// flagged header whose sizes do not hold together simply charges the
/// full page.
pub fn transfer_bytes(page: &[u8]) -> usize {
    if page.len() < PACKED_HEADER {
        return page.len();
    }
    let count = u32::from_le_bytes(page[..4].try_into().unwrap());
    if count & PACKED_FLAG == 0 || count == PACKED_FLAG {
        return PAGE_SIZE;
    }
    let payload = u32::from_le_bytes(page[4..8].try_into().unwrap()) as usize;
    if payload > PAGE_SIZE - PACKED_HEADER {
        return PAGE_SIZE;
    }
    PACKED_HEADER + payload
}

/// Incremental encoder for one packed page: buffers record parts and tracks
/// the exact encoded size, so the writer can seal the page the moment the
/// next record would no longer fit.
#[derive(Debug, Default)]
pub(crate) struct PackedPageBuilder {
    parts: Vec<RecordParts>,
    delta_bytes: usize,
    tag_bytes: usize,
}

impl PackedPageBuilder {
    /// Records currently buffered.
    #[inline]
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Exact on-page size (header + payload) if sealed now.
    fn size(&self) -> usize {
        let n = self.parts.len();
        PACKED_HEADER + self.delta_bytes + (6 * n).div_ceil(8) + self.tag_bytes
    }

    /// Whether appending `p` keeps the page within [`PAGE_SIZE`]. A single
    /// record always fits an empty page (`PACKED_HEADER + MAX_RECORD_PACKED
    /// << PAGE_SIZE`).
    pub fn fits(&self, p: &RecordParts) -> bool {
        let delta = match self.parts.last() {
            None => 0,
            Some(prev) => varint_len(zigzag((p.start.wrapping_sub(prev.start)) as i64)),
        };
        let n = self.parts.len() + 1;
        let size = PACKED_HEADER
            + self.delta_bytes
            + delta
            + (6 * n).div_ceil(8)
            + self.tag_bytes
            + varint_len(u64::from(p.tag));
        size <= PAGE_SIZE
    }

    /// Appends one record's parts. The caller checks [`fits`] first.
    ///
    /// [`fits`]: PackedPageBuilder::fits
    pub fn push(&mut self, p: RecordParts) {
        if let Some(prev) = self.parts.last() {
            self.delta_bytes += varint_len(zigzag((p.start.wrapping_sub(prev.start)) as i64));
        }
        self.tag_bytes += varint_len(u64::from(p.tag));
        self.parts.push(p);
        debug_assert!(self.size() <= PAGE_SIZE);
    }

    /// Serializes the buffered records into `page` (a full page image) and
    /// resets the builder. Returns `(n, bytes_used)`; the builder must be
    /// non-empty.
    pub fn seal_into(&mut self, page: &mut [u8]) -> (usize, usize) {
        let n = self.parts.len();
        debug_assert!(n >= 1, "sealing an empty packed page");
        let base = self.parts[0].start;
        let mut payload = Vec::with_capacity(self.size() - PACKED_HEADER);
        for w in self.parts.windows(2) {
            put_varint(
                &mut payload,
                zigzag((w[1].start.wrapping_sub(w[0].start)) as i64),
            );
        }
        let d = payload.len();
        debug_assert_eq!(d, self.delta_bytes);
        // 6-bit heights, little-endian within a u64 bit cursor.
        let hbytes = (6 * n).div_ceil(8);
        let hoff = payload.len();
        payload.resize(hoff + hbytes, 0);
        for (i, p) in self.parts.iter().enumerate() {
            debug_assert!(p.height <= 63);
            let bit = 6 * i;
            let (byte, shift) = (bit / 8, bit % 8);
            let v = (p.height as u16 & 0x3F) << shift;
            payload[hoff + byte] |= (v & 0xFF) as u8;
            if shift > 2 {
                payload[hoff + byte + 1] |= (v >> 8) as u8;
            }
        }
        for p in &self.parts {
            put_varint(&mut payload, u64::from(p.tag));
        }
        let plen = payload.len();
        debug_assert_eq!(PACKED_HEADER + plen, self.size());
        page[..4].copy_from_slice(&(PACKED_FLAG | n as u32).to_le_bytes());
        page[4..8].copy_from_slice(&(plen as u32).to_le_bytes());
        page[8..12].copy_from_slice(&checksum(n as u32, base, &payload).to_le_bytes());
        page[12..20].copy_from_slice(&base.to_le_bytes());
        page[20..24].copy_from_slice(&(d as u32).to_le_bytes());
        page[PACKED_HEADER..PACKED_HEADER + plen].copy_from_slice(&payload);
        page[PACKED_HEADER + plen..].fill(0);
        self.parts.clear();
        self.delta_bytes = 0;
        self.tag_bytes = 0;
        (n, PACKED_HEADER + plen)
    }
}

/// Parsed and checksum-verified header of a packed page.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PackedHeader {
    /// Record count (≥ 1).
    pub n: usize,
    /// Payload length in bytes.
    payload: usize,
    /// First record's start.
    base: u64,
    /// Delta-section length within the payload.
    deltas: usize,
}

#[inline]
fn corrupt(pid: PageId, reason: &'static str) -> PoolError {
    PoolError::Corrupt { pid, reason }
}

/// Inspects a page's count dword. `Ok(None)` means the page is raw;
/// `Ok(Some(_))` is a structurally valid, checksum-verified packed header.
/// Anything else — a flagged page whose sizes, sections or checksum do not
/// hold together — is [`PoolError::Corrupt`].
pub(crate) fn parse_packed_header(
    page: &[u8],
    pid: PageId,
) -> Result<Option<PackedHeader>, PoolError> {
    let count = u32::from_le_bytes(page[..4].try_into().unwrap());
    if count & PACKED_FLAG == 0 {
        return Ok(None);
    }
    let n = (count & !PACKED_FLAG) as usize;
    if n == 0 {
        return Err(corrupt(pid, "packed page holds no records"));
    }
    let payload = u32::from_le_bytes(page[4..8].try_into().unwrap()) as usize;
    if payload > PAGE_SIZE - PACKED_HEADER {
        return Err(corrupt(pid, "packed payload exceeds page size"));
    }
    // Every record costs at least one tag byte and 6 height bits; records
    // after the first cost at least one delta byte. Anything claiming more
    // records than the payload can hold is corrupt without reading further.
    let min_payload = (n - 1) + (6 * n).div_ceil(8) + n;
    if min_payload > payload {
        return Err(corrupt(pid, "packed record count exceeds payload capacity"));
    }
    let deltas = u32::from_le_bytes(page[20..24].try_into().unwrap()) as usize;
    if deltas > payload {
        return Err(corrupt(pid, "packed delta section exceeds payload"));
    }
    let base = u64::from_le_bytes(page[12..20].try_into().unwrap());
    let stored = u32::from_le_bytes(page[8..12].try_into().unwrap());
    if stored
        != checksum(
            n as u32,
            base,
            &page[PACKED_HEADER..PACKED_HEADER + payload],
        )
    {
        return Err(corrupt(pid, "packed page checksum mismatch"));
    }
    Ok(Some(PackedHeader {
        n,
        payload,
        base,
        deltas,
    }))
}

impl PackedHeader {
    /// Streams every record of the page through `f`, reassembling each from
    /// its `(start, height, tag)` parts via
    /// [`FixedRecord::from_parts`] — no intermediate allocation. The three
    /// payload sections are walked with independent cursors; any section
    /// over- or under-run, out-of-range height or part reassembly failure
    /// is [`PoolError::Corrupt`].
    pub fn decode_each<R: FixedRecord>(
        &self,
        page: &[u8],
        pid: PageId,
        mut f: impl FnMut(R),
    ) -> Result<(), PoolError> {
        let payload = &page[PACKED_HEADER..PACKED_HEADER + self.payload];
        let hbytes = (6 * self.n).div_ceil(8);
        if self.deltas + hbytes > self.payload {
            return Err(corrupt(pid, "packed height section exceeds payload"));
        }
        let heights = &payload[self.deltas..self.deltas + hbytes];
        let mut dcur = 0usize; // cursor in the delta section
        let mut tcur = self.deltas + hbytes; // cursor in the tag section
        let mut start = self.base;
        for i in 0..self.n {
            if i > 0 {
                let raw = get_varint(&payload[..self.deltas], &mut dcur)
                    .ok_or_else(|| corrupt(pid, "packed start delta truncated"))?;
                start = start.wrapping_add(unzigzag(raw) as u64);
            }
            let bit = 6 * i;
            let (byte, shift) = (bit / 8, bit % 8);
            let mut v = u16::from(heights[byte]) >> shift;
            if shift > 2 {
                v |= u16::from(heights[byte + 1]) << (8 - shift);
            }
            let height = u32::from(v & 0x3F);
            let tag64 = get_varint(&payload[..self.payload], &mut tcur)
                .ok_or_else(|| corrupt(pid, "packed tag truncated"))?;
            let tag =
                u32::try_from(tag64).map_err(|_| corrupt(pid, "packed tag exceeds 32 bits"))?;
            let r = R::from_parts(RecordParts { start, height, tag })
                .map_err(|reason| corrupt(pid, reason))?;
            f(r);
        }
        if dcur != self.deltas {
            return Err(corrupt(pid, "packed delta section has trailing bytes"));
        }
        if tcur != self.payload {
            return Err(corrupt(pid, "packed tag section has trailing bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Part {
        start: u64,
        height: u32,
        tag: u32,
    }

    impl FixedRecord for Part {
        const SIZE: usize = 16;
        const PACKABLE: bool = true;
        fn write(&self, out: &mut [u8]) {
            out[..8].copy_from_slice(&self.start.to_le_bytes());
            out[8..12].copy_from_slice(&self.height.to_le_bytes());
            out[12..16].copy_from_slice(&self.tag.to_le_bytes());
        }
        fn read(buf: &[u8]) -> Self {
            Part {
                start: u64::from_le_bytes(buf[..8].try_into().unwrap()),
                height: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
                tag: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            }
        }
        fn to_parts(&self) -> Option<RecordParts> {
            (self.height <= 63).then_some(RecordParts {
                start: self.start,
                height: self.height,
                tag: self.tag,
            })
        }
        fn from_parts(p: RecordParts) -> Result<Self, &'static str> {
            Ok(Part {
                start: p.start,
                height: p.height,
                tag: p.tag,
            })
        }
    }

    fn pid() -> PageId {
        PageId::new(crate::page::FileId(7), 3)
    }

    fn round_trip(parts: &[Part]) {
        let mut b = PackedPageBuilder::default();
        for p in parts {
            assert!(b.fits(&p.to_parts().unwrap()));
            b.push(p.to_parts().unwrap());
        }
        let mut page = [0u8; PAGE_SIZE];
        let (n, used) = b.seal_into(&mut page);
        assert_eq!(n, parts.len());
        assert!(used <= PAGE_SIZE);
        let hdr = parse_packed_header(&page, pid()).unwrap().unwrap();
        assert_eq!(hdr.n, parts.len());
        let mut got = Vec::new();
        hdr.decode_each::<Part>(&page, pid(), |r| got.push(r))
            .unwrap();
        assert_eq!(got, parts);
    }

    #[test]
    fn varint_zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 1 << 40] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        for v in [0u64, 1, 127, 128, 300, u64::MAX, 1 << 35] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v));
            let mut at = 0;
            assert_eq!(get_varint(&buf, &mut at), Some(v));
            assert_eq!(at, buf.len());
        }
    }

    #[test]
    fn extremes_round_trip() {
        // Root-like region start 0 at the maximum height, leaves, and
        // maximum-width start deltas in both directions.
        round_trip(&[Part {
            start: 0,
            height: 63,
            tag: u32::MAX,
        }]);
        round_trip(&[
            Part {
                start: u64::MAX - 1,
                height: 0,
                tag: 0,
            },
            Part {
                start: 0,
                height: 63,
                tag: 1,
            },
            Part {
                start: u64::MAX,
                height: 31,
                tag: u32::MAX,
            },
        ]);
        round_trip(
            &(0..200u64)
                .map(|i| Part {
                    start: i * 2 + 1,
                    height: (i % 64) as u32,
                    tag: (i % 5) as u32,
                })
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn seed_loop_random_round_trips() {
        // Vendored xorshift-style property loop: many random part vectors,
        // including unsorted starts (wrapping deltas must hold).
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..200 {
            let n = (rng() % 300 + 1) as usize;
            let parts: Vec<Part> = (0..n)
                .map(|_| Part {
                    start: rng(),
                    height: (rng() % 64) as u32,
                    tag: (rng() % 1000) as u32,
                })
                .collect();
            // Only pack as many as fit one page.
            let mut b = PackedPageBuilder::default();
            let mut kept = Vec::new();
            for p in &parts {
                if !b.fits(&p.to_parts().unwrap()) {
                    break;
                }
                b.push(p.to_parts().unwrap());
                kept.push(*p);
            }
            assert!(!kept.is_empty(), "case {case}: nothing fit");
            let mut page = [0u8; PAGE_SIZE];
            b.seal_into(&mut page);
            let hdr = parse_packed_header(&page, pid()).unwrap().unwrap();
            let mut got = Vec::new();
            hdr.decode_each::<Part>(&page, pid(), |r| got.push(r))
                .unwrap();
            assert_eq!(got, kept, "case {case}");
        }
    }

    #[test]
    fn raw_counts_are_not_packed() {
        let mut page = [0u8; PAGE_SIZE];
        page[..4].copy_from_slice(&341u32.to_le_bytes());
        assert!(parse_packed_header(&page, pid()).unwrap().is_none());
    }

    #[test]
    fn transfer_bytes_is_sealed_size_for_packed_and_full_page_otherwise() {
        // A raw page ships whole.
        let mut raw = [0u8; PAGE_SIZE];
        raw[..4].copy_from_slice(&341u32.to_le_bytes());
        assert_eq!(transfer_bytes(&raw), PAGE_SIZE);
        // A sealed packed page ships exactly header + payload.
        let mut b = PackedPageBuilder::default();
        for i in 0..50u64 {
            b.push(RecordParts {
                start: 1000 + i * 3,
                height: (i % 7) as u32,
                tag: i as u32,
            });
        }
        let mut page = [0u8; PAGE_SIZE];
        let (_, used) = b.seal_into(&mut page);
        assert!(used < PAGE_SIZE);
        assert_eq!(transfer_bytes(&page), used);
        // Flagged garbage (absurd payload length) charges the full page —
        // the sniff never trusts an implausible header.
        assert_eq!(transfer_bytes(&[0xFF; PAGE_SIZE]), PAGE_SIZE);
        assert_eq!(transfer_bytes(&[0u8; 4]), 4);
    }

    #[test]
    fn corruption_is_detected_not_decoded() {
        let parts: Vec<Part> = (0..100)
            .map(|i| Part {
                start: 1000 + i * 3,
                height: (i % 7) as u32,
                tag: i as u32,
            })
            .collect();
        let mut b = PackedPageBuilder::default();
        for p in &parts {
            b.push(p.to_parts().unwrap());
        }
        let mut page = [0u8; PAGE_SIZE];
        let (_, used) = b.seal_into(&mut page);
        // Flip one bit anywhere in header or payload: always Corrupt.
        for byte in [1usize, 5, 9, 13, 21, PACKED_HEADER, used - 1] {
            let mut bad = page;
            bad[byte] ^= 0x40;
            let r = parse_packed_header(&bad, pid())
                .and_then(|h| h.unwrap().decode_each::<Part>(&bad, pid(), |_| {}));
            assert!(
                matches!(r, Err(PoolError::Corrupt { .. })),
                "bit flip at {byte} went undetected"
            );
        }
        // A torn write (only a prefix of the page made it to disk).
        let mut torn = page;
        torn[used / 2..].fill(0);
        let r = parse_packed_header(&torn, pid())
            .and_then(|h| h.unwrap().decode_each::<Part>(&torn, pid(), |_| {}));
        assert!(matches!(r, Err(PoolError::Corrupt { .. })));
    }

    #[test]
    fn bogus_flagged_header_is_corrupt() {
        // The corrupt-header scenario heap tests exercise: u32::MAX in the
        // count dword has the packed flag set and an absurd record count.
        let mut page = [0u8; PAGE_SIZE];
        page[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            parse_packed_header(&page, pid()),
            Err(PoolError::Corrupt { .. })
        ));
        // Zero records under the flag is equally corrupt.
        page[..4].copy_from_slice(&PACKED_FLAG.to_le_bytes());
        assert!(matches!(
            parse_packed_header(&page, pid()),
            Err(PoolError::Corrupt { .. })
        ));
    }
}
