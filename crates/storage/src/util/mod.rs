//! Small shared utilities.

pub mod hash;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
