//! Small shared utilities.

pub mod hash;
pub mod rng;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::Rng;
