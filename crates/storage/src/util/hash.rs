//! An FxHash-style integer hasher.
//!
//! Join hash tables are keyed by 8-byte PBiTree codes; the standard
//! library's SipHash would dominate the CPU profile of in-memory probes
//! (see the Rust Performance Book's hashing chapter). This is the classic
//! Firefox/rustc multiply-rotate hash: low quality, very fast, plenty for
//! code-valued keys — and HashDoS is not a concern for a local query
//! engine's intermediate state.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher for integer-ish keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Consecutive codes should land in distinct buckets of a
        // power-of-two table.
        let mut buckets = std::collections::HashSet::new();
        for v in 0u64..4096 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            buckets.insert(hasher.finish() % 8192);
        }
        assert!(
            buckets.len() > 3000,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        let s: FxHashSet<u64> = (0..100).collect();
        assert!(s.contains(&99));
        assert!(!s.contains(&100));
    }

    #[test]
    fn byte_stream_matches_any_alignment() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
