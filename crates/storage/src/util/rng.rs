//! A small vendored PRNG so the workspace needs no external crates (the
//! build environment is offline). It lives in the storage crate — the
//! bottom of the dependency graph — because both the workload generators
//! (`pbitree-datagen`, which re-exports it as `datagen::rng`) and the
//! fault-injection backend ([`crate::fault`]) draw from it.
//!
//! The generator is xoshiro256** (Blackman & Vigna) seeded through
//! SplitMix64 — the same construction the reference implementations
//! recommend, with a 2^256 − 1 period and excellent statistical quality
//! for non-cryptographic workload synthesis. The API mirrors the subset of
//! `rand` the generators used (`gen_range`, `gen_bool`, `shuffle`), so
//! call sites read the same; the *streams* differ from `rand`'s, which
//! only matters to tests that pin exact populations (they derive counts
//! from scaling rules, not RNG values).

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step — used only to expand the seed into the state.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, so
    /// nearby seeds yield unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut x = seed;
        let s = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        Rng { s }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform value in `[0, span)` via the multiply-shift reduction.
    #[inline]
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// A uniform value in the given (half-open or inclusive) range.
    /// Panics on empty ranges, like `rand`.
    pub fn gen_range<T: UniformInt, R: UniformRange<T>>(&mut self, range: R) -> T {
        let (lo, span) = range.lo_span();
        assert!(span > 0, "gen_range on an empty range");
        T::from_u64(lo.to_u64() + self.below(span))
    }

    /// `true` with probability `p` (53 uniform bits against `p`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform byte.
    pub fn gen_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Integer types [`Rng::gen_range`] can sample (all range values must be
/// non-negative and fit in `u64`).
pub trait UniformInt: Copy {
    /// Widens to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back (the value is always within the requested range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                debug_assert!((self as i128) >= 0);
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

uniform_int!(u64, u32, usize, i32);

/// Range forms accepted by [`Rng::gen_range`].
pub trait UniformRange<T: UniformInt> {
    /// `(low bound, number of values)`.
    fn lo_span(self) -> (T, u64);
}

impl<T: UniformInt> UniformRange<T> for Range<T> {
    #[inline]
    fn lo_span(self) -> (T, u64) {
        let lo = self.start.to_u64();
        (self.start, self.end.to_u64().saturating_sub(lo))
    }
}

impl<T: UniformInt> UniformRange<T> for RangeInclusive<T> {
    #[inline]
    fn lo_span(self) -> (T, u64) {
        let (s, e) = self.into_inner();
        let lo = s.to_u64();
        (s, e.to_u64().wrapping_sub(lo).wrapping_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v: usize = rng.gen_range(0..4);
            seen[v] = true;
            let w: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&w));
            let x = rng.gen_range(1..=3);
            assert!((1..=3).contains(&x));
        }
        assert!(seen.iter().all(|&b| b), "all residues hit");
    }

    #[test]
    fn bool_extremes() {
        let mut rng = Rng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "p=0.3 gave {heads}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle moved something");
        let mut w = v.clone();
        w.sort_unstable();
        assert_eq!(w, (0..100).collect::<Vec<_>>());
    }
}
