//! Region-range shard plans: the partitioning scheme behind scale-out.
//!
//! PBiTree codes give every node a disjoint integer region (Lemma 3), so
//! region *start* is a natural shard key: split the code span `[1, 2^H-1]`
//! into contiguous ranges and every element has exactly one owning shard.
//! Containment pairs stay local under one replication rule — an ancestor's
//! region covers its descendants' regions, so replicating each ancestor to
//! every shard its region overlaps ([`ShardPlan::overlapping`]) guarantees
//! the ancestor is present wherever a matching descendant is owned, and
//! because descendants are stored once, every result pair materializes in
//! exactly one shard (no merge-time dedup).
//!
//! A [`ShardPlan`] is pure arithmetic over boundaries; the pools, disks
//! and files it partitions live in the join layer's `ShardedStore`.

use crate::zone::ScanFilter;

/// A contiguous range partitioning of the region-start key space
/// `[1, span]` into `n` shards. Boundaries are fixed at construction;
/// shard `i` owns the inclusive start range [`ShardPlan::range`]`(i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Exclusive upper boundaries of shards `0 .. n-1` (length `n - 1`,
    /// strictly ascending, each in `(1, span]`).
    bounds: Vec<u64>,
    /// Last key of the span; shard `n - 1` ends here.
    span: u64,
}

impl ShardPlan {
    /// An even split of `[1, span]` into `shards` ranges. `shards` is
    /// clamped to `1..=span` (a span of `s` keys supports at most `s`
    /// non-empty shards). For a PBiTree of height `H`, pass
    /// `span = 2^H - 1` — the largest region end any code can report.
    pub fn even(shards: usize, span: u64) -> Self {
        let span = span.max(1);
        let n = (shards.max(1) as u64).min(span);
        let bounds = (1..n).map(|i| 1 + i * span / n).collect();
        ShardPlan { bounds, span }
    }

    /// Number of shards in the plan.
    #[inline]
    pub fn shards(&self) -> usize {
        self.bounds.len() + 1
    }

    /// Last key of the partitioned span.
    #[inline]
    pub fn span(&self) -> u64 {
        self.span
    }

    /// The shard owning a region start (keys outside `[1, span]` clamp to
    /// the first/last shard, so routing is total).
    #[inline]
    pub fn shard_of(&self, region_start: u64) -> usize {
        self.bounds.partition_point(|&b| b <= region_start)
    }

    /// Shard `i`'s inclusive region-start range `[lo, hi]`.
    pub fn range(&self, i: usize) -> (u64, u64) {
        let lo = if i == 0 { 1 } else { self.bounds[i - 1] };
        let hi = if i + 1 == self.shards() {
            self.span
        } else {
            self.bounds[i] - 1
        };
        (lo, hi)
    }

    /// The inclusive shard-index range whose start ranges a region
    /// `[start, end]` overlaps — the shards an ancestor with that region
    /// must be replicated to (its descendants' starts all fall inside it).
    #[inline]
    pub fn overlapping(&self, start: u64, end: u64) -> (usize, usize) {
        (self.shard_of(start), self.shard_of(end.max(start)))
    }

    /// Shard `i`'s pushdown envelope: a [`ScanFilter::RegionOverlap`] that
    /// admits exactly the records whose region *touches* the shard's start
    /// range — what a per-shard scan of replicated ancestors may prune by.
    pub fn envelope(&self, i: usize) -> ScanFilter {
        let (start, end) = self.range(i);
        ScanFilter::RegionOverlap { start, end }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_span_without_gaps() {
        for shards in [1usize, 2, 3, 4, 7, 8] {
            let span = (1u64 << 18) - 1;
            let p = ShardPlan::even(shards, span);
            assert_eq!(p.shards(), shards);
            assert_eq!(p.range(0).0, 1);
            assert_eq!(p.range(shards - 1).1, span);
            for i in 1..shards {
                assert_eq!(p.range(i).0, p.range(i - 1).1 + 1, "gap before shard {i}");
            }
            // Ranges are near-even: sizes differ by at most one.
            let sizes: Vec<u64> = (0..shards)
                .map(|i| p.range(i).1 - p.range(i).0 + 1)
                .collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "uneven split {sizes:?}");
        }
    }

    #[test]
    fn shard_of_matches_ranges_and_clamps() {
        let p = ShardPlan::even(4, 1023);
        for i in 0..4 {
            let (lo, hi) = p.range(i);
            assert_eq!(p.shard_of(lo), i);
            assert_eq!(p.shard_of(hi), i);
            assert_eq!(p.shard_of((lo + hi) / 2), i);
        }
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_of(u64::MAX), 3);
    }

    #[test]
    fn overlapping_brackets_every_descendant_owner() {
        let p = ShardPlan::even(8, (1 << 12) - 1);
        // For any region, every start inside it routes to a shard within
        // the replication bracket — the invariant pair-locality rests on.
        for &(s, e) in &[(1u64, 4095u64), (100, 200), (511, 513), (4000, 4095)] {
            let (lo, hi) = p.overlapping(s, e);
            assert!(lo <= hi);
            for k in [s, (s + e) / 2, e] {
                let o = p.shard_of(k);
                assert!(lo <= o && o <= hi, "start {k} escapes bracket {lo}..={hi}");
            }
        }
    }

    #[test]
    fn degenerate_plans_are_total() {
        // More shards than keys clamps; single-key span is one shard.
        let p = ShardPlan::even(8, 3);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.range(2).1, 3);
        let p = ShardPlan::even(4, 1);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.range(0), (1, 1));
        assert_eq!(p.shard_of(1), 0);
    }

    #[test]
    fn envelope_is_the_shard_range() {
        let p = ShardPlan::even(2, 100);
        match p.envelope(1) {
            ScanFilter::RegionOverlap { start, end } => {
                assert_eq!((start, end), p.range(1));
            }
            other => panic!("expected a region window, got {other:?}"),
        }
    }
}
