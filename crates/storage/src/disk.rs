//! Disk backends and the accounting [`Disk`] wrapper.
//!
//! A [`DiskBackend`] is a dumb page store: create/delete files, allocate
//! pages, read and write whole pages. [`Disk`] wraps a backend and is the
//! only thing the buffer pool talks to; it classifies every transfer as
//! sequential or random (relative to the previous access in the same file)
//! and charges the [`CostModel`].
//!
//! # Vectored transfers
//!
//! Backends also expose multi-page ops ([`DiskBackend::read_pages`],
//! [`DiskBackend::write_pages`]) over a run of consecutive pages in one
//! file. The default implementations loop the single-page ops; the
//! file-backed backend issues one seek and streams the run, and the fault
//! backend injects faults *inside* batches (a torn batch is a partial
//! success: [`BatchError::done`] pages transferred, the rest untouched).
//! [`Disk`] charges a successful batch as one head movement plus `N - 1`
//! sequential transfers — each page is still counted exactly once.
//!
//! # Error model
//!
//! Page transfers are fallible: `read_page`/`write_page`/`allocate_page`
//! return [`IoError`] carrying the failing [`PageId`] and a fault kind.
//! Errors flagged [`IoError::transient`] model a device that recovers on
//! retry; [`Disk`] retries those up to its retry limit before giving up,
//! so short transient blips never surface to the engine. Accessing a file
//! that was never created (or a page that was never allocated) is a caller
//! logic error and still panics — only *device* failure is an error value.
//! The [`crate::fault`] module provides a backend wrapper that injects
//! deterministic faults for testing.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use std::sync::{Arc, Mutex};

use crate::page::{FileId, PageBuf, PageId, PAGE_SIZE};
use crate::stats::{AtomicIoStats, CostModel, IoStats};

/// What failed during a page transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoErrorKind {
    /// A page read failed; the destination buffer contents are undefined.
    Read,
    /// A page write failed; the on-disk page is unchanged.
    Write,
    /// A page write failed part-way: the on-disk page holds a torn image
    /// (a prefix of the new data, the rest stale or zeroed).
    TornWrite,
    /// Extending a file with a fresh page failed.
    Allocate,
}

impl fmt::Display for IoErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoErrorKind::Read => write!(f, "read"),
            IoErrorKind::Write => write!(f, "write"),
            IoErrorKind::TornWrite => write!(f, "torn write"),
            IoErrorKind::Allocate => write!(f, "allocate"),
        }
    }
}

/// A failed page transfer, carrying the page it failed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoError {
    /// The page the transfer targeted.
    pub pid: PageId,
    /// What kind of transfer failed.
    pub kind: IoErrorKind,
    /// Whether a retry may succeed ([`Disk`] retries these automatically).
    pub transient: bool,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} of page {} failed",
            if self.transient { "transient " } else { "" },
            self.kind,
            self.pid
        )
    }
}

impl std::error::Error for IoError {}

/// A vectored transfer that failed part-way: the first [`done`] pages of
/// the batch transferred successfully (and, at the [`Disk`] layer, were
/// charged), the failing page is named by [`error`], and every page after
/// it was not attempted.
///
/// [`done`]: BatchError::done
/// [`error`]: BatchError::error
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchError {
    /// Pages at the front of the batch that transferred successfully.
    pub done: usize,
    /// The failure that stopped the batch.
    pub error: IoError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} after {} pages of the batch", self.error, self.done)
    }
}

impl std::error::Error for BatchError {}

/// A page-granular storage device. Backends must be [`Send`]: the buffer
/// pool wraps the disk in a mutex and hands it to scoped worker threads.
///
/// Transfers return [`IoError`] on device failure. Addressing a file that
/// was never created, or a page that was never allocated, is a *caller*
/// logic error and panics — the engine only ever hands out ids it minted.
pub trait DiskBackend: Send {
    /// Creates a new, empty file and returns its id.
    fn create_file(&mut self) -> FileId;
    /// Deletes a file and releases its space. Deleting an unknown file is a
    /// no-op.
    fn delete_file(&mut self, file: FileId);
    /// Appends a zeroed page to `file`, returning its page number.
    fn allocate_page(&mut self, file: FileId) -> Result<u32, IoError>;
    /// Number of pages currently allocated to `file`.
    fn num_pages(&self, file: FileId) -> u32;
    /// Files currently live (created and not deleted), ascending.
    fn live_files(&self) -> Vec<FileId>;
    /// Reads page `pid` into `buf`.
    fn read_page(&mut self, pid: PageId, buf: &mut PageBuf) -> Result<(), IoError>;
    /// Writes `buf` to page `pid`.
    fn write_page(&mut self, pid: PageId, buf: &PageBuf) -> Result<(), IoError>;

    /// Reads `bufs.len()` consecutive pages of `file` starting at `start`,
    /// one page per buffer. On failure the prefix [`BatchError::done`] is
    /// valid and pages past the failing one were not attempted.
    ///
    /// The default loops [`read_page`](DiskBackend::read_page); backends
    /// with a cheaper native path (one seek + a streamed run) override it.
    fn read_pages(
        &mut self,
        file: FileId,
        start: u32,
        bufs: &mut [&mut PageBuf],
    ) -> Result<(), BatchError> {
        for (i, buf) in bufs.iter_mut().enumerate() {
            self.read_page(PageId::new(file, start + i as u32), buf)
                .map_err(|error| BatchError { done: i, error })?;
        }
        Ok(())
    }

    /// Writes `bufs.len()` consecutive pages of `file` starting at `start`.
    /// On failure the prefix [`BatchError::done`] reached the device and
    /// pages past the failing one were not attempted (a *torn batch*).
    ///
    /// The default loops [`write_page`](DiskBackend::write_page); backends
    /// with a cheaper native path override it.
    fn write_pages(
        &mut self,
        file: FileId,
        start: u32,
        bufs: &[&PageBuf],
    ) -> Result<(), BatchError> {
        for (i, buf) in bufs.iter().enumerate() {
            self.write_page(PageId::new(file, start + i as u32), buf)
                .map_err(|error| BatchError { done: i, error })?;
        }
        Ok(())
    }
}

/// In-memory backend: pages live in `Vec`s. The default for experiments —
/// all I/O cost comes from the deterministic [`CostModel`], so runs are
/// machine-independent. Never fails on its own; wrap it in
/// [`crate::fault::FaultBackend`] to inject failures.
#[derive(Default)]
pub struct MemBackend {
    files: Vec<Option<Vec<Box<PageBuf>>>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    fn file(&self, f: FileId) -> &Vec<Box<PageBuf>> {
        self.files
            .get(f.0 as usize)
            .and_then(|o| o.as_ref())
            .expect("unknown or deleted file")
    }

    fn file_mut(&mut self, f: FileId) -> &mut Vec<Box<PageBuf>> {
        self.files
            .get_mut(f.0 as usize)
            .and_then(|o| o.as_mut())
            .expect("unknown or deleted file")
    }
}

impl DiskBackend for MemBackend {
    fn create_file(&mut self) -> FileId {
        self.files.push(Some(Vec::new()));
        FileId((self.files.len() - 1) as u32)
    }

    fn delete_file(&mut self, file: FileId) {
        if let Some(slot) = self.files.get_mut(file.0 as usize) {
            *slot = None;
        }
    }

    fn allocate_page(&mut self, file: FileId) -> Result<u32, IoError> {
        let f = self.file_mut(file);
        f.push(Box::new([0u8; PAGE_SIZE]));
        Ok((f.len() - 1) as u32)
    }

    fn num_pages(&self, file: FileId) -> u32 {
        self.files
            .get(file.0 as usize)
            .and_then(|o| o.as_ref())
            .map_or(0, |f| f.len() as u32)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| FileId(i as u32))
            .collect()
    }

    fn read_page(&mut self, pid: PageId, buf: &mut PageBuf) -> Result<(), IoError> {
        buf.copy_from_slice(&self.file(pid.file)[pid.page as usize][..]);
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &PageBuf) -> Result<(), IoError> {
        self.file_mut(pid.file)[pid.page as usize].copy_from_slice(buf);
        Ok(())
    }
}

/// A handle that shares one backend between owners: the crash-recovery
/// harness "restarts the machine" by dropping a buffer pool (losing every
/// cached frame) while a second [`SharedBackend`] over the same inner
/// backend keeps the surviving disk image for the next pool. All calls
/// delegate through a mutex; cloning shares, never copies.
pub struct SharedBackend<B: DiskBackend> {
    inner: Arc<Mutex<B>>,
}

impl<B: DiskBackend> SharedBackend<B> {
    /// Wraps `backend` for sharing.
    pub fn new(backend: B) -> Self {
        SharedBackend {
            inner: Arc::new(Mutex::new(backend)),
        }
    }

    /// Runs `f` against the inner backend (test hooks, e.g. flipping a
    /// [`crate::fault::FaultHandle`] between incarnations).
    pub fn with_inner<R>(&self, f: impl FnOnce(&mut B) -> R) -> R {
        f(&mut self.inner.lock().unwrap())
    }
}

impl<B: DiskBackend> Clone for SharedBackend<B> {
    fn clone(&self) -> Self {
        SharedBackend {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<B: DiskBackend> DiskBackend for SharedBackend<B> {
    fn create_file(&mut self) -> FileId {
        self.inner.lock().unwrap().create_file()
    }

    fn delete_file(&mut self, file: FileId) {
        self.inner.lock().unwrap().delete_file(file)
    }

    fn allocate_page(&mut self, file: FileId) -> Result<u32, IoError> {
        self.inner.lock().unwrap().allocate_page(file)
    }

    fn num_pages(&self, file: FileId) -> u32 {
        self.inner.lock().unwrap().num_pages(file)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.inner.lock().unwrap().live_files()
    }

    fn read_page(&mut self, pid: PageId, buf: &mut PageBuf) -> Result<(), IoError> {
        self.inner.lock().unwrap().read_page(pid, buf)
    }

    fn write_page(&mut self, pid: PageId, buf: &PageBuf) -> Result<(), IoError> {
        self.inner.lock().unwrap().write_page(pid, buf)
    }

    fn read_pages(
        &mut self,
        file: FileId,
        start: u32,
        bufs: &mut [&mut PageBuf],
    ) -> Result<(), BatchError> {
        self.inner.lock().unwrap().read_pages(file, start, bufs)
    }

    fn write_pages(
        &mut self,
        file: FileId,
        start: u32,
        bufs: &[&PageBuf],
    ) -> Result<(), BatchError> {
        self.inner.lock().unwrap().write_pages(file, start, bufs)
    }
}

/// Real-file backend: each [`FileId`] maps to one file under a directory.
/// Used to validate that the engine works against an actual filesystem;
/// experiments default to [`MemBackend`] for determinism. Filesystem
/// errors surface as non-transient [`IoError`]s.
pub struct FileBackend {
    dir: PathBuf,
    files: Vec<Option<(File, u32)>>,
}

impl FileBackend {
    /// Creates a backend storing page files under `dir` (created if absent).
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileBackend {
            dir,
            files: Vec::new(),
        })
    }

    fn entry_mut(&mut self, f: FileId) -> &mut (File, u32) {
        self.files
            .get_mut(f.0 as usize)
            .and_then(|o| o.as_mut())
            .expect("unknown or deleted file")
    }
}

impl DiskBackend for FileBackend {
    fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        let path = self.dir.join(format!("f{}.pages", id.0));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .expect("create page file");
        self.files.push(Some((file, 0)));
        id
    }

    fn delete_file(&mut self, file: FileId) {
        if let Some(slot) = self.files.get_mut(file.0 as usize) {
            if slot.take().is_some() {
                let _ = std::fs::remove_file(self.dir.join(format!("f{}.pages", file.0)));
            }
        }
    }

    fn allocate_page(&mut self, file: FileId) -> Result<u32, IoError> {
        let (f, n) = self.entry_mut(file);
        let page = *n;
        f.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))
            .and_then(|_| f.write_all(&[0u8; PAGE_SIZE]))
            .map_err(|_| IoError {
                pid: PageId::new(file, page),
                kind: IoErrorKind::Allocate,
                transient: false,
            })?;
        *n += 1;
        Ok(page)
    }

    fn num_pages(&self, file: FileId) -> u32 {
        self.files
            .get(file.0 as usize)
            .and_then(|o| o.as_ref())
            .map_or(0, |(_, n)| *n)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| FileId(i as u32))
            .collect()
    }

    fn read_page(&mut self, pid: PageId, buf: &mut PageBuf) -> Result<(), IoError> {
        let (f, n) = self.entry_mut(pid.file);
        assert!(pid.page < *n, "read past end of file {pid}");
        f.seek(SeekFrom::Start(pid.page as u64 * PAGE_SIZE as u64))
            .and_then(|_| f.read_exact(buf))
            .map_err(|_| IoError {
                pid,
                kind: IoErrorKind::Read,
                transient: false,
            })
    }

    fn write_page(&mut self, pid: PageId, buf: &PageBuf) -> Result<(), IoError> {
        let (f, n) = self.entry_mut(pid.file);
        assert!(pid.page < *n, "write past end of file {pid}");
        f.seek(SeekFrom::Start(pid.page as u64 * PAGE_SIZE as u64))
            .and_then(|_| f.write_all(buf))
            .map_err(|_| IoError {
                pid,
                kind: IoErrorKind::Write,
                transient: false,
            })
    }

    /// Native batch: one seek, then the run streams with `read_exact` per
    /// page — no per-page seek syscalls.
    fn read_pages(
        &mut self,
        file: FileId,
        start: u32,
        bufs: &mut [&mut PageBuf],
    ) -> Result<(), BatchError> {
        let (f, n) = self.entry_mut(file);
        assert!(
            start as u64 + bufs.len() as u64 <= *n as u64,
            "batch read past end of file {file:?}"
        );
        let err = |done: usize| BatchError {
            done,
            error: IoError {
                pid: PageId::new(file, start + done as u32),
                kind: IoErrorKind::Read,
                transient: false,
            },
        };
        f.seek(SeekFrom::Start(start as u64 * PAGE_SIZE as u64))
            .map_err(|_| err(0))?;
        for (i, buf) in bufs.iter_mut().enumerate() {
            f.read_exact(&mut buf[..]).map_err(|_| err(i))?;
        }
        Ok(())
    }

    /// Native batch: one seek, then the run streams with `write_all` per
    /// page — no per-page seek syscalls.
    fn write_pages(
        &mut self,
        file: FileId,
        start: u32,
        bufs: &[&PageBuf],
    ) -> Result<(), BatchError> {
        let (f, n) = self.entry_mut(file);
        assert!(
            start as u64 + bufs.len() as u64 <= *n as u64,
            "batch write past end of file {file:?}"
        );
        let err = |done: usize| BatchError {
            done,
            error: IoError {
                pid: PageId::new(file, start + done as u32),
                kind: IoErrorKind::Write,
                transient: false,
            },
        };
        f.seek(SeekFrom::Start(start as u64 * PAGE_SIZE as u64))
            .map_err(|_| err(0))?;
        for (i, buf) in bufs.iter().enumerate() {
            f.write_all(&buf[..]).map_err(|_| err(i))?;
        }
        Ok(())
    }
}

/// How many times [`Disk`] re-attempts a transfer whose error is flagged
/// transient before giving up. Three attempts after the first failure
/// absorb any single-blip fault while keeping a persistently failing
/// "transient" device from hanging the engine.
pub const DEFAULT_RETRY_LIMIT: u32 = 3;

/// The accounting layer every page transfer goes through.
///
/// Stats discipline: a transfer is charged to the [`CostModel`] and the
/// [`IoStats`] counters **exactly once, when it succeeds**. Failed
/// attempts (including transient attempts that are later retried
/// successfully) are never charged, so fault-free reruns of a workload
/// report identical counters whether or not transient faults occurred.
pub struct Disk {
    backend: Box<dyn DiskBackend>,
    cost: CostModel,
    stats: Arc<AtomicIoStats>,
    /// The single head position: the last page transferred, across *all*
    /// files — one disk arm. A transfer is sequential only when it targets
    /// the same file at the head page or the one right after it; switching
    /// files always seeks. This is what makes batching matter: interleaved
    /// per-page streams (a scan racing a spill, partition fan-out writers)
    /// pay a seek per page, while a vectored batch pays one seek and then
    /// `N - 1` sequential transfers.
    head: Option<PageId>,
    /// Max automatic retries of a transient transfer error.
    retry_limit: u32,
}

impl Disk {
    /// Wraps a backend with the given cost model.
    pub fn new(backend: Box<dyn DiskBackend>, cost: CostModel) -> Self {
        Disk {
            backend,
            cost,
            stats: Arc::new(AtomicIoStats::default()),
            head: None,
            retry_limit: DEFAULT_RETRY_LIMIT,
        }
    }

    /// An in-memory disk with the default (year-2000 HDD) cost model.
    pub fn in_memory() -> Self {
        Disk::new(Box::new(MemBackend::new()), CostModel::default())
    }

    /// An in-memory disk that only counts pages (no simulated time).
    pub fn in_memory_free() -> Self {
        Disk::new(Box::new(MemBackend::new()), CostModel::free())
    }

    /// Sets the transient-error retry limit (0 disables retries).
    pub fn with_retry_limit(mut self, retries: u32) -> Self {
        self.retry_limit = retries;
        self
    }

    /// Current cumulative counters.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// A handle to the live counters, readable without holding any lock on
    /// the disk itself.
    #[inline]
    pub fn stats_handle(&self) -> Arc<AtomicIoStats> {
        Arc::clone(&self.stats)
    }

    /// The cost model in effect.
    #[inline]
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Charges one transferred page of `bytes` wire bytes (a packed
    /// page's sealed size, [`PAGE_SIZE`] for raw pages — see
    /// [`crate::codec::transfer_bytes`]) per
    /// [`CostModel::transfer_ns`].
    ///
    /// [`PAGE_SIZE`]: crate::page::PAGE_SIZE
    fn charge(&mut self, pid: PageId, is_read: bool, bytes: usize) {
        let seq = self
            .head
            .is_some_and(|h| h.file == pid.file && (pid.page == h.page + 1 || pid.page == h.page));
        self.head = Some(pid);
        self.stats
            .record(is_read, seq, self.cost.transfer_ns(seq, bytes));
    }

    /// Charges a run of pages of `file` starting at `start`, one wire
    /// size per page: the first page is classified against the head, the
    /// rest are sequential by construction. Each page is counted exactly
    /// once.
    fn charge_batch<I: IntoIterator<Item = usize>>(
        &mut self,
        file: FileId,
        start: u32,
        sizes: I,
        is_read: bool,
    ) {
        for (i, bytes) in sizes.into_iter().enumerate() {
            self.charge(PageId::new(file, start + i as u32), is_read, bytes);
        }
    }

    /// See [`DiskBackend::create_file`].
    pub fn create_file(&mut self) -> FileId {
        self.backend.create_file()
    }

    /// See [`DiskBackend::delete_file`].
    pub fn delete_file(&mut self, file: FileId) {
        if self.head.is_some_and(|h| h.file == file) {
            self.head = None;
        }
        self.backend.delete_file(file);
    }

    /// See [`DiskBackend::allocate_page`]. Allocation itself is free; the
    /// subsequent write of the page is what gets charged.
    pub fn allocate_page(&mut self, file: FileId) -> Result<u32, IoError> {
        self.backend.allocate_page(file)
    }

    /// See [`DiskBackend::num_pages`].
    pub fn num_pages(&self, file: FileId) -> u32 {
        self.backend.num_pages(file)
    }

    /// See [`DiskBackend::live_files`].
    pub fn live_files(&self) -> Vec<FileId> {
        self.backend.live_files()
    }

    /// Reads a page, charging the cost model on success. Transient errors
    /// are retried up to the retry limit.
    pub fn read_page(&mut self, pid: PageId, buf: &mut PageBuf) -> Result<(), IoError> {
        let mut attempts = 0u32;
        loop {
            match self.backend.read_page(pid, buf) {
                Ok(()) => {
                    self.charge(pid, true, crate::codec::transfer_bytes(&buf[..]));
                    return Ok(());
                }
                Err(e) if e.transient && attempts < self.retry_limit => attempts += 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes a page, charging the cost model on success. Transient errors
    /// are retried up to the retry limit.
    pub fn write_page(&mut self, pid: PageId, buf: &PageBuf) -> Result<(), IoError> {
        let mut attempts = 0u32;
        loop {
            match self.backend.write_page(pid, buf) {
                Ok(()) => {
                    self.charge(pid, false, crate::codec::transfer_bytes(&buf[..]));
                    return Ok(());
                }
                Err(e) if e.transient && attempts < self.retry_limit => attempts += 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads a run of consecutive pages, charging the cost model exactly
    /// once per transferred page: the batch costs one head movement (random
    /// unless the head already sits at `start`) plus sequential transfers.
    ///
    /// A transient fault resumes the batch at the failing page (transferred
    /// prefix pages are charged and kept — they are *done*); a persistent
    /// fault returns a [`BatchError`] whose [`done`](BatchError::done)
    /// prefix was transferred and charged, so accounting stays accurate for
    /// torn batches.
    pub fn read_pages(
        &mut self,
        file: FileId,
        start: u32,
        bufs: &mut [&mut PageBuf],
    ) -> Result<(), BatchError> {
        let mut done = 0usize;
        let mut attempts = 0u32;
        while done < bufs.len() {
            let s = start + done as u32;
            match self.backend.read_pages(file, s, &mut bufs[done..]) {
                Ok(()) => {
                    let sizes: Vec<usize> = bufs[done..]
                        .iter()
                        .map(|b| crate::codec::transfer_bytes(&b[..]))
                        .collect();
                    self.charge_batch(file, s, sizes, true);
                    return Ok(());
                }
                Err(BatchError { done: d, error }) => {
                    if d > 0 {
                        let sizes: Vec<usize> = bufs[done..done + d]
                            .iter()
                            .map(|b| crate::codec::transfer_bytes(&b[..]))
                            .collect();
                        self.charge_batch(file, s, sizes, true);
                        done += d;
                        attempts = 0;
                    }
                    if error.transient && attempts < self.retry_limit {
                        attempts += 1;
                    } else {
                        return Err(BatchError { done, error });
                    }
                }
            }
        }
        Ok(())
    }

    /// Writes a run of consecutive pages; the charging, resume and
    /// torn-batch rules of [`read_pages`](Disk::read_pages) apply.
    pub fn write_pages(
        &mut self,
        file: FileId,
        start: u32,
        bufs: &[&PageBuf],
    ) -> Result<(), BatchError> {
        let mut done = 0usize;
        let mut attempts = 0u32;
        while done < bufs.len() {
            let s = start + done as u32;
            match self.backend.write_pages(file, s, &bufs[done..]) {
                Ok(()) => {
                    let sizes: Vec<usize> = bufs[done..]
                        .iter()
                        .map(|b| crate::codec::transfer_bytes(&b[..]))
                        .collect();
                    self.charge_batch(file, s, sizes, false);
                    return Ok(());
                }
                Err(BatchError { done: d, error }) => {
                    if d > 0 {
                        let sizes: Vec<usize> = bufs[done..done + d]
                            .iter()
                            .map(|b| crate::codec::transfer_bytes(&b[..]))
                            .collect();
                        self.charge_batch(file, s, sizes, false);
                        done += d;
                        attempts = 0;
                    }
                    if error.transient && attempts < self.retry_limit {
                        attempts += 1;
                    } else {
                        return Err(BatchError { done, error });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: Box<dyn DiskBackend>) {
        let mut disk = Disk::new(backend, CostModel::free());
        let f = disk.create_file();
        let p0 = disk.allocate_page(f).unwrap();
        let p1 = disk.allocate_page(f).unwrap();
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(disk.num_pages(f), 2);
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(PageId::new(f, 1), &buf).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 1), &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
        disk.read_page(PageId::new(f, 0), &mut out).unwrap();
        assert_eq!(out[0], 0);
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(Box::new(MemBackend::new()));
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pbitree-disk-{}", std::process::id()));
        roundtrip(Box::new(FileBackend::new(&dir).unwrap()));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let mut disk = Disk::in_memory();
        let f = disk.create_file();
        for _ in 0..4 {
            disk.allocate_page(f).unwrap();
        }
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap(); // first access: random
        disk.read_page(PageId::new(f, 1), &mut buf).unwrap(); // sequential
        disk.read_page(PageId::new(f, 2), &mut buf).unwrap(); // sequential
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap(); // random (jump back)
        let s = disk.stats();
        assert_eq!(s.seq_reads, 2);
        assert_eq!(s.rand_reads, 2);
        assert_eq!(
            s.sim_ns,
            2 * CostModel::default().seq_ns + 2 * CostModel::default().rand_ns
        );
    }

    #[test]
    fn rereading_same_page_counts_sequential() {
        // Re-reading the page under the head costs no seek.
        let mut disk = Disk::in_memory();
        let f = disk.create_file();
        disk.allocate_page(f).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap();
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap();
        assert_eq!(disk.stats().seq_reads, 1);
        assert_eq!(disk.stats().rand_reads, 1);
    }

    #[test]
    fn head_is_global_across_files() {
        // One disk arm: interleaved per-page access to two files seeks on
        // every transfer, even though each file's pages ascend.
        let mut disk = Disk::in_memory();
        let f1 = disk.create_file();
        let f2 = disk.create_file();
        for _ in 0..3 {
            disk.allocate_page(f1).unwrap();
            disk.allocate_page(f2).unwrap();
        }
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f1, 0), &mut buf).unwrap();
        disk.read_page(PageId::new(f2, 0), &mut buf).unwrap();
        disk.read_page(PageId::new(f1, 1), &mut buf).unwrap();
        disk.read_page(PageId::new(f2, 1), &mut buf).unwrap();
        let s = disk.stats();
        assert_eq!(s.rand_reads, 4);
        assert_eq!(s.seq_reads, 0);
    }

    #[test]
    fn batched_reads_charge_one_seek_per_run() {
        // The same interleaved workload, batched: each run pays one seek
        // plus sequential transfers.
        let mut disk = Disk::in_memory();
        let f1 = disk.create_file();
        let f2 = disk.create_file();
        for _ in 0..3 {
            disk.allocate_page(f1).unwrap();
            disk.allocate_page(f2).unwrap();
        }
        let mut a = [0u8; PAGE_SIZE];
        let mut b = [0u8; PAGE_SIZE];
        let mut c = [0u8; PAGE_SIZE];
        disk.read_pages(f1, 0, &mut [&mut a, &mut b, &mut c])
            .unwrap();
        disk.read_pages(f2, 0, &mut [&mut a, &mut b, &mut c])
            .unwrap();
        let s = disk.stats();
        assert_eq!(s.rand_reads, 2, "one head movement per batch");
        assert_eq!(s.seq_reads, 4);
        assert_eq!(
            s.sim_ns,
            2 * CostModel::default().rand_ns + 4 * CostModel::default().seq_ns
        );
    }

    #[test]
    fn packed_pages_charge_their_sealed_bytes_not_the_full_page() {
        use crate::record::RecordParts;
        let mut disk = Disk::in_memory();
        let f = disk.create_file();
        disk.allocate_page(f).unwrap();
        let mut packed = [0u8; PAGE_SIZE];
        let mut b = crate::codec::PackedPageBuilder::default();
        for i in 0..40u64 {
            b.push(RecordParts {
                start: 500 + 2 * i,
                height: 1,
                tag: 3,
            });
        }
        let (_, used) = b.seal_into(&mut packed);
        disk.write_page(PageId::new(f, 0), &packed).unwrap();
        let model = CostModel::default();
        let after_write = disk.stats().sim_ns;
        assert_eq!(after_write, model.transfer_ns(false, used));
        assert!(after_write < model.rand_ns, "compression credited in time");
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap();
        // The re-read is sequential (head parked on the page): pure
        // streaming of the sealed bytes.
        assert_eq!(
            disk.stats().sim_ns - after_write,
            model.seq_ns * used as u64 / PAGE_SIZE as u64
        );
    }

    #[test]
    fn batched_write_roundtrip_and_charging() {
        let mut disk = Disk::in_memory();
        let f = disk.create_file();
        for _ in 0..4 {
            disk.allocate_page(f).unwrap();
        }
        let mut imgs = [[0u8; PAGE_SIZE]; 3];
        for (i, img) in imgs.iter_mut().enumerate() {
            img[0] = i as u8 + 1;
        }
        let refs: Vec<&PageBuf> = imgs.iter().collect();
        disk.write_pages(f, 1, &refs).unwrap();
        let s = disk.stats();
        assert_eq!((s.rand_writes, s.seq_writes), (1, 2));
        let mut out = [0u8; PAGE_SIZE];
        for i in 0..3u32 {
            disk.read_page(PageId::new(f, i + 1), &mut out).unwrap();
            assert_eq!(out[0], i as u8 + 1);
        }
        // Page 1 re-read after the batch left the head at page 3: random.
        // (Pages 2 and 3 followed sequentially above.)
        assert_eq!(disk.stats().rand_reads, 1);
        assert_eq!(disk.stats().seq_reads, 2);
    }

    #[test]
    fn batch_resumes_head_after_batched_run() {
        // A single-page read right after a batch continues the run.
        let mut disk = Disk::in_memory();
        let f = disk.create_file();
        for _ in 0..4 {
            disk.allocate_page(f).unwrap();
        }
        let mut a = [0u8; PAGE_SIZE];
        let mut b = [0u8; PAGE_SIZE];
        disk.read_pages(f, 0, &mut [&mut a, &mut b]).unwrap();
        disk.read_page(PageId::new(f, 2), &mut a).unwrap();
        assert_eq!(disk.stats().seq_reads, 2);
        assert_eq!(disk.stats().rand_reads, 1);
    }

    #[test]
    fn delete_file_frees_slot() {
        let mut disk = Disk::in_memory_free();
        let f = disk.create_file();
        disk.allocate_page(f).unwrap();
        assert_eq!(disk.live_files(), vec![f]);
        disk.delete_file(f);
        assert_eq!(disk.num_pages(f), 0);
        assert!(disk.live_files().is_empty());
        // Deleting twice is a no-op.
        disk.delete_file(f);
    }

    #[test]
    fn io_error_display_names_the_page() {
        let e = IoError {
            pid: PageId::new(FileId(3), 7),
            kind: IoErrorKind::Write,
            transient: false,
        };
        let s = e.to_string();
        assert!(s.contains("write"), "{s}");
        assert!(s.contains("3") && s.contains("7"), "{s}");
        let t = IoError {
            transient: true,
            ..e
        }
        .to_string();
        assert!(t.contains("transient"), "{t}");
    }
}
