//! Disk backends and the accounting [`Disk`] wrapper.
//!
//! A [`DiskBackend`] is a dumb page store: create/delete files, allocate
//! pages, read and write whole pages. [`Disk`] wraps a backend and is the
//! only thing the buffer pool talks to; it classifies every transfer as
//! sequential or random (relative to the previous access in the same file)
//! and charges the [`CostModel`].
//!
//! # Error model
//!
//! Page transfers are fallible: `read_page`/`write_page`/`allocate_page`
//! return [`IoError`] carrying the failing [`PageId`] and a fault kind.
//! Errors flagged [`IoError::transient`] model a device that recovers on
//! retry; [`Disk`] retries those up to its retry limit before giving up,
//! so short transient blips never surface to the engine. Accessing a file
//! that was never created (or a page that was never allocated) is a caller
//! logic error and still panics — only *device* failure is an error value.
//! The [`crate::fault`] module provides a backend wrapper that injects
//! deterministic faults for testing.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use std::sync::Arc;

use crate::page::{FileId, PageBuf, PageId, PAGE_SIZE};
use crate::stats::{AtomicIoStats, CostModel, IoStats};

/// What failed during a page transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoErrorKind {
    /// A page read failed; the destination buffer contents are undefined.
    Read,
    /// A page write failed; the on-disk page is unchanged.
    Write,
    /// A page write failed part-way: the on-disk page holds a torn image
    /// (a prefix of the new data, the rest stale or zeroed).
    TornWrite,
    /// Extending a file with a fresh page failed.
    Allocate,
}

impl fmt::Display for IoErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoErrorKind::Read => write!(f, "read"),
            IoErrorKind::Write => write!(f, "write"),
            IoErrorKind::TornWrite => write!(f, "torn write"),
            IoErrorKind::Allocate => write!(f, "allocate"),
        }
    }
}

/// A failed page transfer, carrying the page it failed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoError {
    /// The page the transfer targeted.
    pub pid: PageId,
    /// What kind of transfer failed.
    pub kind: IoErrorKind,
    /// Whether a retry may succeed ([`Disk`] retries these automatically).
    pub transient: bool,
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} of page {} failed",
            if self.transient { "transient " } else { "" },
            self.kind,
            self.pid
        )
    }
}

impl std::error::Error for IoError {}

/// A page-granular storage device. Backends must be [`Send`]: the buffer
/// pool wraps the disk in a mutex and hands it to scoped worker threads.
///
/// Transfers return [`IoError`] on device failure. Addressing a file that
/// was never created, or a page that was never allocated, is a *caller*
/// logic error and panics — the engine only ever hands out ids it minted.
pub trait DiskBackend: Send {
    /// Creates a new, empty file and returns its id.
    fn create_file(&mut self) -> FileId;
    /// Deletes a file and releases its space. Deleting an unknown file is a
    /// no-op.
    fn delete_file(&mut self, file: FileId);
    /// Appends a zeroed page to `file`, returning its page number.
    fn allocate_page(&mut self, file: FileId) -> Result<u32, IoError>;
    /// Number of pages currently allocated to `file`.
    fn num_pages(&self, file: FileId) -> u32;
    /// Files currently live (created and not deleted), ascending.
    fn live_files(&self) -> Vec<FileId>;
    /// Reads page `pid` into `buf`.
    fn read_page(&mut self, pid: PageId, buf: &mut PageBuf) -> Result<(), IoError>;
    /// Writes `buf` to page `pid`.
    fn write_page(&mut self, pid: PageId, buf: &PageBuf) -> Result<(), IoError>;
}

/// In-memory backend: pages live in `Vec`s. The default for experiments —
/// all I/O cost comes from the deterministic [`CostModel`], so runs are
/// machine-independent. Never fails on its own; wrap it in
/// [`crate::fault::FaultBackend`] to inject failures.
#[derive(Default)]
pub struct MemBackend {
    files: Vec<Option<Vec<Box<PageBuf>>>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    fn file(&self, f: FileId) -> &Vec<Box<PageBuf>> {
        self.files
            .get(f.0 as usize)
            .and_then(|o| o.as_ref())
            .expect("unknown or deleted file")
    }

    fn file_mut(&mut self, f: FileId) -> &mut Vec<Box<PageBuf>> {
        self.files
            .get_mut(f.0 as usize)
            .and_then(|o| o.as_mut())
            .expect("unknown or deleted file")
    }
}

impl DiskBackend for MemBackend {
    fn create_file(&mut self) -> FileId {
        self.files.push(Some(Vec::new()));
        FileId((self.files.len() - 1) as u32)
    }

    fn delete_file(&mut self, file: FileId) {
        if let Some(slot) = self.files.get_mut(file.0 as usize) {
            *slot = None;
        }
    }

    fn allocate_page(&mut self, file: FileId) -> Result<u32, IoError> {
        let f = self.file_mut(file);
        f.push(Box::new([0u8; PAGE_SIZE]));
        Ok((f.len() - 1) as u32)
    }

    fn num_pages(&self, file: FileId) -> u32 {
        self.files
            .get(file.0 as usize)
            .and_then(|o| o.as_ref())
            .map_or(0, |f| f.len() as u32)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| FileId(i as u32))
            .collect()
    }

    fn read_page(&mut self, pid: PageId, buf: &mut PageBuf) -> Result<(), IoError> {
        buf.copy_from_slice(&self.file(pid.file)[pid.page as usize][..]);
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &PageBuf) -> Result<(), IoError> {
        self.file_mut(pid.file)[pid.page as usize].copy_from_slice(buf);
        Ok(())
    }
}

/// Real-file backend: each [`FileId`] maps to one file under a directory.
/// Used to validate that the engine works against an actual filesystem;
/// experiments default to [`MemBackend`] for determinism. Filesystem
/// errors surface as non-transient [`IoError`]s.
pub struct FileBackend {
    dir: PathBuf,
    files: Vec<Option<(File, u32)>>,
}

impl FileBackend {
    /// Creates a backend storing page files under `dir` (created if absent).
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileBackend {
            dir,
            files: Vec::new(),
        })
    }

    fn entry_mut(&mut self, f: FileId) -> &mut (File, u32) {
        self.files
            .get_mut(f.0 as usize)
            .and_then(|o| o.as_mut())
            .expect("unknown or deleted file")
    }
}

impl DiskBackend for FileBackend {
    fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        let path = self.dir.join(format!("f{}.pages", id.0));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .expect("create page file");
        self.files.push(Some((file, 0)));
        id
    }

    fn delete_file(&mut self, file: FileId) {
        if let Some(slot) = self.files.get_mut(file.0 as usize) {
            if slot.take().is_some() {
                let _ = std::fs::remove_file(self.dir.join(format!("f{}.pages", file.0)));
            }
        }
    }

    fn allocate_page(&mut self, file: FileId) -> Result<u32, IoError> {
        let (f, n) = self.entry_mut(file);
        let page = *n;
        f.seek(SeekFrom::Start(page as u64 * PAGE_SIZE as u64))
            .and_then(|_| f.write_all(&[0u8; PAGE_SIZE]))
            .map_err(|_| IoError {
                pid: PageId::new(file, page),
                kind: IoErrorKind::Allocate,
                transient: false,
            })?;
        *n += 1;
        Ok(page)
    }

    fn num_pages(&self, file: FileId) -> u32 {
        self.files
            .get(file.0 as usize)
            .and_then(|o| o.as_ref())
            .map_or(0, |(_, n)| *n)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| FileId(i as u32))
            .collect()
    }

    fn read_page(&mut self, pid: PageId, buf: &mut PageBuf) -> Result<(), IoError> {
        let (f, n) = self.entry_mut(pid.file);
        assert!(pid.page < *n, "read past end of file {pid}");
        f.seek(SeekFrom::Start(pid.page as u64 * PAGE_SIZE as u64))
            .and_then(|_| f.read_exact(buf))
            .map_err(|_| IoError {
                pid,
                kind: IoErrorKind::Read,
                transient: false,
            })
    }

    fn write_page(&mut self, pid: PageId, buf: &PageBuf) -> Result<(), IoError> {
        let (f, n) = self.entry_mut(pid.file);
        assert!(pid.page < *n, "write past end of file {pid}");
        f.seek(SeekFrom::Start(pid.page as u64 * PAGE_SIZE as u64))
            .and_then(|_| f.write_all(buf))
            .map_err(|_| IoError {
                pid,
                kind: IoErrorKind::Write,
                transient: false,
            })
    }
}

/// How many times [`Disk`] re-attempts a transfer whose error is flagged
/// transient before giving up. Three attempts after the first failure
/// absorb any single-blip fault while keeping a persistently failing
/// "transient" device from hanging the engine.
pub const DEFAULT_RETRY_LIMIT: u32 = 3;

/// The accounting layer every page transfer goes through.
///
/// Stats discipline: a transfer is charged to the [`CostModel`] and the
/// [`IoStats`] counters **exactly once, when it succeeds**. Failed
/// attempts (including transient attempts that are later retried
/// successfully) are never charged, so fault-free reruns of a workload
/// report identical counters whether or not transient faults occurred.
pub struct Disk {
    backend: Box<dyn DiskBackend>,
    cost: CostModel,
    stats: Arc<AtomicIoStats>,
    /// Last page accessed per file, to classify sequential vs. random.
    last_access: HashMap<FileId, u32>,
    /// Max automatic retries of a transient transfer error.
    retry_limit: u32,
}

impl Disk {
    /// Wraps a backend with the given cost model.
    pub fn new(backend: Box<dyn DiskBackend>, cost: CostModel) -> Self {
        Disk {
            backend,
            cost,
            stats: Arc::new(AtomicIoStats::default()),
            last_access: HashMap::new(),
            retry_limit: DEFAULT_RETRY_LIMIT,
        }
    }

    /// An in-memory disk with the default (year-2000 HDD) cost model.
    pub fn in_memory() -> Self {
        Disk::new(Box::new(MemBackend::new()), CostModel::default())
    }

    /// An in-memory disk that only counts pages (no simulated time).
    pub fn in_memory_free() -> Self {
        Disk::new(Box::new(MemBackend::new()), CostModel::free())
    }

    /// Sets the transient-error retry limit (0 disables retries).
    pub fn with_retry_limit(mut self, retries: u32) -> Self {
        self.retry_limit = retries;
        self
    }

    /// Current cumulative counters.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// A handle to the live counters, readable without holding any lock on
    /// the disk itself.
    #[inline]
    pub fn stats_handle(&self) -> Arc<AtomicIoStats> {
        Arc::clone(&self.stats)
    }

    /// The cost model in effect.
    #[inline]
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    fn charge(&mut self, pid: PageId, is_read: bool) {
        let seq = self
            .last_access
            .get(&pid.file)
            .is_some_and(|&last| pid.page == last + 1 || pid.page == last);
        self.last_access.insert(pid.file, pid.page);
        let ns = if seq {
            self.cost.seq_ns
        } else {
            self.cost.rand_ns
        };
        self.stats.record(is_read, seq, ns);
    }

    /// See [`DiskBackend::create_file`].
    pub fn create_file(&mut self) -> FileId {
        self.backend.create_file()
    }

    /// See [`DiskBackend::delete_file`].
    pub fn delete_file(&mut self, file: FileId) {
        self.last_access.remove(&file);
        self.backend.delete_file(file);
    }

    /// See [`DiskBackend::allocate_page`]. Allocation itself is free; the
    /// subsequent write of the page is what gets charged.
    pub fn allocate_page(&mut self, file: FileId) -> Result<u32, IoError> {
        self.backend.allocate_page(file)
    }

    /// See [`DiskBackend::num_pages`].
    pub fn num_pages(&self, file: FileId) -> u32 {
        self.backend.num_pages(file)
    }

    /// See [`DiskBackend::live_files`].
    pub fn live_files(&self) -> Vec<FileId> {
        self.backend.live_files()
    }

    /// Reads a page, charging the cost model on success. Transient errors
    /// are retried up to the retry limit.
    pub fn read_page(&mut self, pid: PageId, buf: &mut PageBuf) -> Result<(), IoError> {
        let mut attempts = 0u32;
        loop {
            match self.backend.read_page(pid, buf) {
                Ok(()) => {
                    self.charge(pid, true);
                    return Ok(());
                }
                Err(e) if e.transient && attempts < self.retry_limit => attempts += 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes a page, charging the cost model on success. Transient errors
    /// are retried up to the retry limit.
    pub fn write_page(&mut self, pid: PageId, buf: &PageBuf) -> Result<(), IoError> {
        let mut attempts = 0u32;
        loop {
            match self.backend.write_page(pid, buf) {
                Ok(()) => {
                    self.charge(pid, false);
                    return Ok(());
                }
                Err(e) if e.transient && attempts < self.retry_limit => attempts += 1,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: Box<dyn DiskBackend>) {
        let mut disk = Disk::new(backend, CostModel::free());
        let f = disk.create_file();
        let p0 = disk.allocate_page(f).unwrap();
        let p1 = disk.allocate_page(f).unwrap();
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(disk.num_pages(f), 2);
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(PageId::new(f, 1), &buf).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 1), &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
        disk.read_page(PageId::new(f, 0), &mut out).unwrap();
        assert_eq!(out[0], 0);
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(Box::new(MemBackend::new()));
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pbitree-disk-{}", std::process::id()));
        roundtrip(Box::new(FileBackend::new(&dir).unwrap()));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let mut disk = Disk::in_memory();
        let f = disk.create_file();
        for _ in 0..4 {
            disk.allocate_page(f).unwrap();
        }
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap(); // first access: random
        disk.read_page(PageId::new(f, 1), &mut buf).unwrap(); // sequential
        disk.read_page(PageId::new(f, 2), &mut buf).unwrap(); // sequential
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap(); // random (jump back)
        let s = disk.stats();
        assert_eq!(s.seq_reads, 2);
        assert_eq!(s.rand_reads, 2);
        assert_eq!(
            s.sim_ns,
            2 * CostModel::default().seq_ns + 2 * CostModel::default().rand_ns
        );
    }

    #[test]
    fn rereading_same_page_counts_sequential() {
        // Re-reading the page under the head costs no seek.
        let mut disk = Disk::in_memory();
        let f = disk.create_file();
        disk.allocate_page(f).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap();
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap();
        assert_eq!(disk.stats().seq_reads, 1);
        assert_eq!(disk.stats().rand_reads, 1);
    }

    #[test]
    fn per_file_head_positions() {
        // Interleaved access to two files: each file tracks its own head.
        let mut disk = Disk::in_memory();
        let f1 = disk.create_file();
        let f2 = disk.create_file();
        for _ in 0..3 {
            disk.allocate_page(f1).unwrap();
            disk.allocate_page(f2).unwrap();
        }
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f1, 0), &mut buf).unwrap();
        disk.read_page(PageId::new(f2, 0), &mut buf).unwrap();
        disk.read_page(PageId::new(f1, 1), &mut buf).unwrap();
        disk.read_page(PageId::new(f2, 1), &mut buf).unwrap();
        let s = disk.stats();
        // First touch of each file is random, the rest sequential.
        assert_eq!(s.rand_reads, 2);
        assert_eq!(s.seq_reads, 2);
    }

    #[test]
    fn delete_file_frees_slot() {
        let mut disk = Disk::in_memory_free();
        let f = disk.create_file();
        disk.allocate_page(f).unwrap();
        assert_eq!(disk.live_files(), vec![f]);
        disk.delete_file(f);
        assert_eq!(disk.num_pages(f), 0);
        assert!(disk.live_files().is_empty());
        // Deleting twice is a no-op.
        disk.delete_file(f);
    }

    #[test]
    fn io_error_display_names_the_page() {
        let e = IoError {
            pid: PageId::new(FileId(3), 7),
            kind: IoErrorKind::Write,
            transient: false,
        };
        let s = e.to_string();
        assert!(s.contains("write"), "{s}");
        assert!(s.contains("3") && s.contains("7"), "{s}");
        let t = IoError {
            transient: true,
            ..e
        }
        .to_string();
        assert!(t.contains("transient"), "{t}");
    }
}
