//! Access-pattern declarations: how a caller intends to touch a file.
//!
//! Scans, sorts, bulk loads and partition writers know their own access
//! shape; the storage layer does not. [`ScanOptions`] carries that intent
//! down to the buffer pool and heap writers, which turn it into read-ahead
//! prefetching ([`AccessPattern::Sequential`]) or coalesced multi-page
//! appends ([`AccessPattern::WriteOnce`]). The declared depth is a *hint*:
//! the pool prefetches best-effort and never past what the frame budget can
//! absorb, and callers sharing a budget across several streams shrink their
//! depth with [`ScanOptions::shared`] so concurrent streams do not evict
//! each other's read-ahead.

use crate::zone::ScanFilter;

/// How a file is about to be accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Point lookups with no useful locality: no read-ahead, no batching.
    Random,
    /// A front-to-back scan. On a miss the pool reads the missed page plus
    /// up to `readahead - 1` following pages in one vectored transfer
    /// (1 disables read-ahead).
    Sequential {
        /// Total pages per fetch batch, the missed page included.
        readahead: usize,
    },
    /// Output written once, front to back, and only read later. Writers
    /// buffer `batch` page images and append them with one vectored
    /// transfer (1 writes page-at-a-time).
    WriteOnce {
        /// Page images coalesced per append batch.
        batch: usize,
    },
}

/// Default transfer-batch depth (pages) for sequential and write-once
/// access when the caller does not say otherwise.
pub const DEFAULT_IO_DEPTH: usize = 8;

/// Per-operation I/O options: the declared access pattern plus an optional
/// pushdown [`ScanFilter`] evaluated against zone maps by heap scans.
///
/// The default is `Sequential { readahead: DEFAULT_IO_DEPTH }` with no
/// filter: heap files in this engine are overwhelmingly scanned front to
/// back, so plain [`crate::HeapFile::scan`] gets read-ahead unless a
/// caller opts out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// The declared access pattern.
    pub pattern: AccessPattern,
    /// Pushdown predicate for filtered scans ([`ScanFilter::All`] reads
    /// everything). Ignored by writers and raw page reads; consumed by
    /// [`crate::heap::HeapScan`], which skips pages whose zone cannot
    /// satisfy it.
    pub filter: ScanFilter,
    /// Whether heap writers should pack pages of
    /// [packable](crate::record::FixedRecord::PACKABLE) records with the
    /// delta/varint codec ([`crate::codec`]). Scans ignore it — the page
    /// header, not the option, selects the decode path, so compressed and
    /// raw files are always readable. Defaults to the `PBITREE_COMPRESS`
    /// environment variable (any value but `0` enables it; unset disables).
    pub compress: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions::sequential(DEFAULT_IO_DEPTH)
    }
}

/// Process-wide compression default: the `PBITREE_COMPRESS` environment
/// variable (any value but `0` enables, unset disables), **snapshotted
/// exactly once per process** on first use. Every construction site —
/// [`ScanOptions`] constructors, join contexts, the bench harness —
/// funnels through this one snapshot, so a mid-run change to the
/// environment can never flip the knob between two writers of one
/// workload and produce mixed-layout files.
pub fn compress_default() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("PBITREE_COMPRESS").is_some_and(|v| v != *"0"))
}

impl ScanOptions {
    /// Point-lookup access: no read-ahead, no write batching.
    pub fn random() -> Self {
        ScanOptions {
            pattern: AccessPattern::Random,
            filter: ScanFilter::All,
            compress: compress_default(),
        }
    }

    /// Sequential access with the given fetch-batch depth (clamped to at
    /// least 1; 1 means no read-ahead).
    pub fn sequential(readahead: usize) -> Self {
        ScanOptions {
            pattern: AccessPattern::Sequential {
                readahead: readahead.max(1),
            },
            filter: ScanFilter::All,
            compress: compress_default(),
        }
    }

    /// Write-once output with the given append-batch depth (clamped to at
    /// least 1; 1 means page-at-a-time writes).
    pub fn write_once(batch: usize) -> Self {
        ScanOptions {
            pattern: AccessPattern::WriteOnce {
                batch: batch.max(1),
            },
            filter: ScanFilter::All,
            compress: compress_default(),
        }
    }

    /// The same options with `filter` conjoined onto any existing filter
    /// (see [`ScanFilter::and`]).
    pub fn with_filter(self, filter: ScanFilter) -> Self {
        ScanOptions {
            filter: self.filter.and(filter),
            ..self
        }
    }

    /// The same options with page compression switched on or off —
    /// the knob [`crate::heap::HeapWriter`] consults for packable record
    /// types.
    pub fn with_compress(self, compress: bool) -> Self {
        ScanOptions { compress, ..self }
    }

    /// The transfer-batch depth the pattern implies: `readahead` for
    /// sequential access, `batch` for write-once output, 1 for random.
    pub fn depth(&self) -> usize {
        match self.pattern {
            AccessPattern::Random => 1,
            AccessPattern::Sequential { readahead } => readahead,
            AccessPattern::WriteOnce { batch } => batch,
        }
    }

    /// Caps the depth so one stream's read-ahead can occupy at most half of
    /// `budget` frames — the sizing rule that keeps prefetch from evicting
    /// the pages an operator is actually working on. Random access is
    /// unaffected.
    pub fn clamped(self, budget: usize) -> Self {
        self.with_depth(self.depth().min((budget / 2).max(1)))
    }

    /// Splits the depth across `streams` concurrent streams of one budget
    /// (interleaved sort-merge inputs, partition fan-out writers), so their
    /// combined appetite stays within the single-stream depth.
    pub fn shared(self, streams: usize) -> Self {
        self.with_depth(self.depth() / streams.max(1))
    }

    /// Same pattern with a new depth (clamped to at least 1). The filter
    /// and compression flag are preserved.
    pub fn with_depth(self, depth: usize) -> Self {
        let depth = depth.max(1);
        ScanOptions {
            pattern: match self.pattern {
                AccessPattern::Random => AccessPattern::Random,
                AccessPattern::Sequential { .. } => AccessPattern::Sequential { readahead: depth },
                AccessPattern::WriteOnce { .. } => AccessPattern::WriteOnce { batch: depth },
            },
            ..self
        }
    }

    /// The write-once counterpart of this option set: same depth, batching
    /// appends instead of prefetching reads. Any read filter is dropped —
    /// writers filter nothing — but the compression flag survives, so
    /// operators handing their read options to an output writer (sort runs,
    /// partition files) compress exactly when their context says to.
    pub fn as_write(self) -> Self {
        ScanOptions {
            compress: self.compress,
            ..ScanOptions::write_once(self.depth())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_default_is_a_process_snapshot() {
        // Whatever the first read observed is locked in: flipping the
        // environment mid-process must not change the default, so one
        // workload can never mix page layouts across its writers.
        let first = compress_default();
        std::env::set_var("PBITREE_COMPRESS", if first { "0" } else { "1" });
        assert_eq!(compress_default(), first);
        assert_eq!(ScanOptions::default().compress, first);
        assert_eq!(ScanOptions::random().compress, first);
        assert_eq!(ScanOptions::write_once(4).compress, first);
    }

    #[test]
    fn default_is_sequential_at_default_depth() {
        assert_eq!(
            ScanOptions::default().pattern,
            AccessPattern::Sequential {
                readahead: DEFAULT_IO_DEPTH
            }
        );
    }

    #[test]
    fn depth_floors_at_one() {
        assert_eq!(ScanOptions::sequential(0).depth(), 1);
        assert_eq!(ScanOptions::write_once(0).depth(), 1);
        assert_eq!(ScanOptions::random().depth(), 1);
    }

    #[test]
    fn clamped_to_half_budget() {
        let o = ScanOptions::sequential(16);
        assert_eq!(o.clamped(8).depth(), 4);
        assert_eq!(o.clamped(64).depth(), 16);
        assert_eq!(o.clamped(3).depth(), 1);
        assert_eq!(
            ScanOptions::random().clamped(2).pattern,
            AccessPattern::Random
        );
    }

    #[test]
    fn shared_divides_depth() {
        let o = ScanOptions::sequential(8);
        assert_eq!(o.shared(2).depth(), 4);
        assert_eq!(o.shared(100).depth(), 1);
        assert_eq!(o.shared(0).depth(), 8);
    }

    #[test]
    fn filter_survives_depth_adjustments() {
        let f = ScanFilter::RegionOverlap { start: 3, end: 9 };
        let o = ScanOptions::sequential(8).with_filter(f);
        assert_eq!(o.filter, f);
        assert_eq!(o.clamped(8).filter, f);
        assert_eq!(o.shared(2).filter, f);
        assert_eq!(o.with_depth(2).filter, f);
        // Writers never filter.
        assert_eq!(o.as_write().filter, ScanFilter::All);
        // Conjunction, not replacement.
        let both = o.with_filter(ScanFilter::HeightRange { min: 1, max: 2 });
        assert!(matches!(
            both.filter,
            ScanFilter::RegionAndHeight {
                start: 3,
                end: 9,
                min: 1,
                max: 2
            }
        ));
    }

    #[test]
    fn compress_survives_every_combinator() {
        let o = ScanOptions::sequential(8).with_compress(true);
        assert!(o.compress);
        assert!(o.clamped(8).compress);
        assert!(o.shared(2).compress);
        assert!(o.with_depth(2).compress);
        assert!(
            o.with_filter(ScanFilter::HeightRange { min: 0, max: 1 })
                .compress
        );
        // Writers inherit the flag: that is where it takes effect.
        assert!(o.as_write().compress);
        assert!(!o.with_compress(false).as_write().compress);
    }

    #[test]
    fn as_write_keeps_depth() {
        assert_eq!(
            ScanOptions::sequential(6).as_write().pattern,
            AccessPattern::WriteOnce { batch: 6 }
        );
    }
}
