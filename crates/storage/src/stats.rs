//! I/O accounting and the simulated-disk cost model.
//!
//! The paper's experiments ran Minibase on a raw disk of a Pentium III era
//! machine, so elapsed times are dominated by page I/O. We make that regime
//! reproducible on any hardware by *counting* page transfers, classifying
//! them sequential vs. random, and charging a deterministic cost per
//! transfer. Experiments report this simulated time alongside measured CPU
//! time and the raw counters.

/// Cost charged per page transfer, in nanoseconds.
///
/// Defaults model a year-2000 commodity disk: ~10 ms for a random access
/// (seek + rotational latency) and ~0.2 ms to stream a 4 KiB page at
/// ~20 MB/s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of a sequential page read or write (follows the previous access
    /// to the same file at the preceding page number).
    pub seq_ns: u64,
    /// Cost of a random page read or write.
    pub rand_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seq_ns: 200_000,     // 0.2 ms
            rand_ns: 10_000_000, // 10 ms
        }
    }
}

impl CostModel {
    /// A model that only counts pages (zero simulated time), for tests.
    pub fn free() -> Self {
        CostModel {
            seq_ns: 0,
            rand_ns: 0,
        }
    }

    /// Simulated cost of transferring `bytes` of one page: the model
    /// decomposes into a streaming term (`seq_ns` buys one full page at
    /// the disk's transfer rate, so partial pages cost proportionally
    /// less) plus, for random transfers, a positioning surcharge of
    /// `rand_ns - seq_ns` (seek + rotational latency, independent of the
    /// transfer size). A full-page transfer therefore costs exactly
    /// `seq_ns` or `rand_ns` as before; only short transfers — packed
    /// pages, which ship `header + payload` bytes — cost less.
    pub fn transfer_ns(&self, seq: bool, bytes: usize) -> u64 {
        let stream = (self.seq_ns * bytes as u64) / crate::page::PAGE_SIZE as u64;
        if seq {
            stream
        } else {
            stream + self.rand_ns.saturating_sub(self.seq_ns)
        }
    }
}

/// Activity counters of a [`crate::wal::Wal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Log frames appended (record and commit-marker frames).
    pub frames: u64,
    /// Logical operations committed.
    pub commits: u64,
    /// Log pages written to disk (appends plus tail rewrites).
    pub page_writes: u64,
    /// Flushes forced by the pool's LSN gate — dirty-page write-backs that
    /// had to make the log durable first.
    pub gate_flushes: u64,
}

/// Cumulative I/O counters of a [`crate::disk::Disk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read, sequential (page n follows page n-1 of the same file).
    pub seq_reads: u64,
    /// Pages read at a non-sequential position.
    pub rand_reads: u64,
    /// Pages written sequentially.
    pub seq_writes: u64,
    /// Pages written at a non-sequential position.
    pub rand_writes: u64,
    /// Simulated time accrued, in nanoseconds, per the [`CostModel`].
    pub sim_ns: u64,
}

impl IoStats {
    /// Total pages read.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.seq_reads + self.rand_reads
    }

    /// Total pages written.
    #[inline]
    pub fn writes(&self) -> u64 {
        self.seq_writes + self.rand_writes
    }

    /// Total page transfers.
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Simulated I/O time in seconds.
    #[inline]
    pub fn sim_secs(&self) -> f64 {
        self.sim_ns as f64 / 1e9
    }

    /// Counter-wise difference `self - earlier`; panics on underflow, which
    /// would indicate mismatched snapshots.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads - earlier.seq_reads,
            rand_reads: self.rand_reads - earlier.rand_reads,
            seq_writes: self.seq_writes - earlier.seq_writes,
            rand_writes: self.rand_writes - earlier.rand_writes,
            sim_ns: self.sim_ns - earlier.sim_ns,
        }
    }
}

/// Lock-free cumulative I/O counters, shared between the [`crate::disk::Disk`]
/// (which increments them under its own lock) and the buffer pool (which
/// snapshots them without taking the disk lock — experiment measurement
/// must not serialize against worker I/O).
///
/// Increments happen while the disk mutex is held, so the counters are
/// exactly-once per page transfer; `Relaxed` ordering suffices because a
/// snapshot is only compared against another snapshot from the same
/// thread of control (before/after an operator run).
#[derive(Debug, Default)]
pub struct AtomicIoStats {
    seq_reads: std::sync::atomic::AtomicU64,
    rand_reads: std::sync::atomic::AtomicU64,
    seq_writes: std::sync::atomic::AtomicU64,
    rand_writes: std::sync::atomic::AtomicU64,
    sim_ns: std::sync::atomic::AtomicU64,
}

impl AtomicIoStats {
    /// Records one transfer of the given kind, charging `ns` of simulated
    /// time. Called exactly once per page transfer by the disk layer.
    pub fn record(&self, is_read: bool, seq: bool, ns: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.sim_ns.fetch_add(ns, Relaxed);
        match (is_read, seq) {
            (true, true) => &self.seq_reads,
            (true, false) => &self.rand_reads,
            (false, true) => &self.seq_writes,
            (false, false) => &self.rand_writes,
        }
        .fetch_add(1, Relaxed);
    }

    /// A consistent-enough snapshot of the counters (each counter is read
    /// atomically; cross-counter skew is possible only while workers are
    /// actively transferring pages).
    pub fn snapshot(&self) -> IoStats {
        use std::sync::atomic::Ordering::Relaxed;
        IoStats {
            seq_reads: self.seq_reads.load(Relaxed),
            rand_reads: self.rand_reads.load(Relaxed),
            seq_writes: self.seq_writes.load(Relaxed),
            rand_writes: self.rand_writes.load(Relaxed),
            sim_ns: self.sim_ns.load(Relaxed),
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} (seq {} / rand {}), writes={} (seq {} / rand {}), sim={:.3}s",
            self.reads(),
            self.seq_reads,
            self.rand_reads,
            self.writes(),
            self.seq_writes,
            self.rand_writes,
            self.sim_secs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_diff() {
        let a = IoStats {
            seq_reads: 10,
            rand_reads: 2,
            seq_writes: 5,
            rand_writes: 1,
            sim_ns: 1_000,
        };
        assert_eq!(a.reads(), 12);
        assert_eq!(a.writes(), 6);
        assert_eq!(a.total(), 18);
        let b = IoStats {
            seq_reads: 15,
            rand_reads: 4,
            seq_writes: 6,
            rand_writes: 3,
            sim_ns: 3_000,
        };
        let d = b.since(&a);
        assert_eq!(d.seq_reads, 5);
        assert_eq!(d.rand_reads, 2);
        assert_eq!(d.sim_ns, 2_000);
    }

    #[test]
    fn default_cost_model_orders_random_above_sequential() {
        let m = CostModel::default();
        assert!(m.rand_ns > m.seq_ns);
        assert_eq!(CostModel::free().seq_ns, 0);
    }

    #[test]
    fn transfer_cost_is_per_byte_with_full_pages_unchanged() {
        use crate::page::PAGE_SIZE;
        let m = CostModel::default();
        // Full-page transfers cost exactly the classic per-page figures.
        assert_eq!(m.transfer_ns(true, PAGE_SIZE), m.seq_ns);
        assert_eq!(m.transfer_ns(false, PAGE_SIZE), m.rand_ns);
        // Short transfers stream proportionally fewer bytes...
        assert_eq!(m.transfer_ns(true, PAGE_SIZE / 4), m.seq_ns / 4);
        // ...but a random transfer still pays the full positioning cost.
        assert!(m.transfer_ns(false, 64) >= m.rand_ns - m.seq_ns);
        assert!(m.transfer_ns(false, 64) < m.rand_ns);
        assert_eq!(CostModel::free().transfer_ns(false, PAGE_SIZE), 0);
    }
}
