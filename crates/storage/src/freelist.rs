//! Page free list: pages a mutable heap file has emptied and released,
//! available for reuse by later inserts before the file grows.
//!
//! The list is an in-memory structure rebuilt on recovery: every release
//! and every reuse is logged as a [`crate::wal`] frame (`Free` / `Alloc`),
//! and [`crate::wal::recover`] replays those frames in LSN order to arrive
//! at exactly the set of pages that were free at the crash point. Nothing
//! is ever handed out across files — a page number only means something
//! within the file that allocated it.
//!
//! Ordering is deterministic: [`FreeList::acquire`] always returns the
//! lowest free page of the file, so a recovered run and its never-crashed
//! twin make identical placement decisions.

use std::collections::BTreeSet;

use crate::page::{FileId, PageId};

/// Deterministic per-file free-page tracker.
#[derive(Debug, Clone, Default)]
pub struct FreeList {
    free: BTreeSet<(FileId, u32)>,
}

impl FreeList {
    /// An empty free list.
    pub fn new() -> Self {
        FreeList::default()
    }

    /// Marks `pid` free. Returns whether it was newly inserted (freeing a
    /// page twice is a caller bug, surfaced rather than masked).
    pub fn release(&mut self, pid: PageId) -> bool {
        self.free.insert((pid.file, pid.page))
    }

    /// Removes and returns the lowest free page of `file`, if any.
    pub fn acquire(&mut self, file: FileId) -> Option<u32> {
        let &(_, page) = self.free.range((file, 0)..=(file, u32::MAX)).next()?;
        self.free.remove(&(file, page));
        Some(page)
    }

    /// Removes a specific page (recovery replay of an `Alloc` frame that
    /// reused a previously freed page). Returns whether it was present.
    pub fn reclaim(&mut self, pid: PageId) -> bool {
        self.free.remove(&(pid.file, pid.page))
    }

    /// Whether `pid` is currently free.
    pub fn contains(&self, pid: PageId) -> bool {
        self.free.contains(&(pid.file, pid.page))
    }

    /// Number of free pages across all files.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether no pages are free.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// The free pages of one file, ascending — what a recovery test
    /// compares against its twin.
    pub fn pages_of(&self, file: FileId) -> Vec<u32> {
        self.free
            .range((file, 0)..=(file, u32::MAX))
            .map(|&(_, p)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(f: u32, p: u32) -> PageId {
        PageId::new(FileId(f), p)
    }

    #[test]
    fn acquire_is_lowest_first_per_file() {
        let mut fl = FreeList::new();
        assert!(fl.release(pid(1, 9)));
        assert!(fl.release(pid(1, 3)));
        assert!(fl.release(pid(2, 0)));
        assert!(!fl.release(pid(1, 3)), "double free reported");
        assert_eq!(fl.len(), 3);
        assert_eq!(fl.acquire(FileId(1)), Some(3));
        assert_eq!(fl.acquire(FileId(1)), Some(9));
        assert_eq!(fl.acquire(FileId(1)), None, "file 2's page not leaked");
        assert_eq!(fl.acquire(FileId(2)), Some(0));
        assert!(fl.is_empty());
    }

    #[test]
    fn reclaim_removes_exactly_one() {
        let mut fl = FreeList::new();
        fl.release(pid(7, 4));
        fl.release(pid(7, 5));
        assert!(fl.contains(pid(7, 5)));
        assert!(fl.reclaim(pid(7, 5)));
        assert!(!fl.reclaim(pid(7, 5)));
        assert_eq!(fl.pages_of(FileId(7)), vec![4]);
    }
}
