//! Region zone maps: per-page and per-file summaries of the key intervals
//! and heights a heap file's records span, plus the pushdown predicate
//! ([`ScanFilter`]) that lets scans skip non-qualifying pages before they
//! are read.
//!
//! Zone maps are free statistics: [`crate::heap::HeapWriter`] folds each
//! record's [`crate::record::FixedRecord::bounds_hint`] and
//! [`crate::record::FixedRecord::height_hint`] into one [`ZoneEntry`] per
//! sealed page, and registers the resulting [`FileZones`] with the buffer
//! pool alongside the rest of the heap metadata. A filtered scan consults
//! the map *before* fetching a page; a page whose zone cannot satisfy the
//! filter is skipped at **zero I/O cost** and counted in
//! [`crate::buffer::PoolStats::pages_skipped`].
//!
//! Filters are **necessary conditions only**: a page or record the filter
//! rejects provably cannot satisfy the predicate the caller derived the
//! filter from, while everything admitted is still checked by the caller.
//! Pruning therefore never changes a join's result, only its cost.

use crate::page::PAGE_SIZE;

/// Summary of the records in one page (or one whole file): the envelope
/// `[lo, hi]` of their key intervals and the range of their heights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneEntry {
    /// Minimum interval start (`min region_start` for PBiTree elements).
    pub lo: u64,
    /// Maximum interval end (`max region_end`).
    pub hi: u64,
    /// Minimum record height.
    pub min_h: u32,
    /// Maximum record height.
    pub max_h: u32,
}

impl ZoneEntry {
    /// A zone covering exactly one record's interval and height.
    #[inline]
    pub fn of(lo: u64, hi: u64, h: u32) -> Self {
        ZoneEntry {
            lo,
            hi,
            min_h: h,
            max_h: h,
        }
    }

    /// Widens this zone to also cover `(lo, hi, h)`.
    #[inline]
    pub fn fold(&mut self, lo: u64, hi: u64, h: u32) {
        self.lo = self.lo.min(lo);
        self.hi = self.hi.max(hi);
        self.min_h = self.min_h.min(h);
        self.max_h = self.max_h.max(h);
    }

    /// Widens this zone to also cover everything `other` covers.
    #[inline]
    pub fn merge(&mut self, other: &ZoneEntry) {
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        self.min_h = self.min_h.min(other.min_h);
        self.max_h = self.max_h.max(other.max_h);
    }
}

/// The zone map of one heap file: one optional [`ZoneEntry`] per page, in
/// page order. A page has no entry when some record on it provided no
/// hints — such pages are never skipped (no information, no pruning).
#[derive(Debug, Clone, Default)]
pub struct FileZones {
    pages: Vec<Option<ZoneEntry>>,
}

impl FileZones {
    /// Appends the zone of the next sealed page.
    pub fn push(&mut self, zone: Option<ZoneEntry>) {
        self.pages.push(zone);
    }

    /// The zone of page `page`, if the page has one.
    #[inline]
    pub fn page(&self, page: u32) -> Option<&ZoneEntry> {
        self.pages.get(page as usize).and_then(|z| z.as_ref())
    }

    /// Number of pages covered (equals the file's page count).
    #[inline]
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Whether at least one page carries a zone — registration is pointless
    /// otherwise.
    pub fn any(&self) -> bool {
        self.pages.iter().any(|z| z.is_some())
    }

    /// Replaces the zone of page `page`, extending the map with untracked
    /// (`None`) pages if the file grew past its recorded length. Used by
    /// the mutable heap path: a delete *rebuilds* the page's zone from the
    /// surviving records (exact), an insert of a hintless record clears it
    /// (a `None` page is never skipped, so pruning stays correct).
    pub fn set_page(&mut self, page: u32, zone: Option<ZoneEntry>) {
        let idx = page as usize;
        if idx >= self.pages.len() {
            self.pages.resize(idx + 1, None);
        }
        self.pages[idx] = zone;
    }

    /// Widens page `page`'s zone to also cover `(lo, hi, h)` — the
    /// insert-side zone maintenance. A page that never had a zone stays
    /// without one (it already admits everything), but a page beyond the
    /// recorded length gets a fresh exact zone.
    pub fn widen(&mut self, page: u32, lo: u64, hi: u64, h: u32) {
        let idx = page as usize;
        if idx >= self.pages.len() {
            self.pages.resize(idx + 1, None);
            self.pages[idx] = Some(ZoneEntry::of(lo, hi, h));
            return;
        }
        if let Some(z) = &mut self.pages[idx] {
            z.fold(lo, hi, h);
        }
    }

    /// The file-level zone: the merge of every page zone. `None` when no
    /// page has one.
    pub fn file_zone(&self) -> Option<ZoneEntry> {
        let mut acc: Option<ZoneEntry> = None;
        for z in self.pages.iter().flatten() {
            match &mut acc {
                None => acc = Some(*z),
                Some(a) => a.merge(z),
            }
        }
        acc
    }

    /// Approximate in-memory footprint of the map, in pages — kept tiny
    /// relative to the file it summarizes (one entry per [`PAGE_SIZE`]
    /// bytes of data).
    pub fn footprint_pages(&self) -> usize {
        (self.pages.len() * std::mem::size_of::<Option<ZoneEntry>>()).div_ceil(PAGE_SIZE)
    }
}

/// A pushdown predicate evaluated against zone maps (page granularity) and
/// record hints (record granularity) inside [`crate::heap::HeapScan`].
///
/// Every variant is a *necessary* condition for the caller's actual join
/// predicate, never a sufficient one: rejected pages and records provably
/// cannot produce output, admitted ones are re-checked by the operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanFilter {
    /// No filtering: every page is read, every record returned.
    #[default]
    All,
    /// Admit only records whose key interval overlaps `[start, end]`.
    RegionOverlap {
        /// Inclusive window start.
        start: u64,
        /// Inclusive window end.
        end: u64,
    },
    /// Admit only records whose height lies in `[min, max]`.
    HeightRange {
        /// Inclusive minimum height.
        min: u32,
        /// Inclusive maximum height.
        max: u32,
    },
    /// Conjunction of [`ScanFilter::RegionOverlap`] and
    /// [`ScanFilter::HeightRange`] (built by [`ScanFilter::and`]).
    RegionAndHeight {
        /// Inclusive window start.
        start: u64,
        /// Inclusive window end.
        end: u64,
        /// Inclusive minimum height.
        min: u32,
        /// Inclusive maximum height.
        max: u32,
    },
}

impl ScanFilter {
    /// Whether this filter admits everything (the scan fast-path check).
    #[inline]
    pub fn is_all(&self) -> bool {
        matches!(self, ScanFilter::All)
    }

    /// The region window this filter constrains, if any.
    #[inline]
    fn window(&self) -> Option<(u64, u64)> {
        match *self {
            ScanFilter::RegionOverlap { start, end }
            | ScanFilter::RegionAndHeight { start, end, .. } => Some((start, end)),
            _ => None,
        }
    }

    /// The height range this filter constrains, if any.
    #[inline]
    fn heights(&self) -> Option<(u32, u32)> {
        match *self {
            ScanFilter::HeightRange { min, max } | ScanFilter::RegionAndHeight { min, max, .. } => {
                Some((min, max))
            }
            _ => None,
        }
    }

    /// Conjunction of two filters. Overlapping constraints intersect, so
    /// the result rejects exactly the union of what either side rejects.
    pub fn and(self, other: ScanFilter) -> ScanFilter {
        let window = match (self.window(), other.window()) {
            (Some((s1, e1)), Some((s2, e2))) => Some((s1.max(s2), e1.min(e2))),
            (w, None) | (None, w) => w,
        };
        let heights = match (self.heights(), other.heights()) {
            (Some((l1, h1)), Some((l2, h2))) => Some((l1.max(l2), h1.min(h2))),
            (h, None) | (None, h) => h,
        };
        match (window, heights) {
            (None, None) => ScanFilter::All,
            (Some((start, end)), None) => ScanFilter::RegionOverlap { start, end },
            (None, Some((min, max))) => ScanFilter::HeightRange { min, max },
            (Some((start, end)), Some((min, max))) => ScanFilter::RegionAndHeight {
                start,
                end,
                min,
                max,
            },
        }
    }

    /// Disjunction of two filters, as a single bounding envelope. The
    /// result admits everything either side admits — the contract a shared
    /// scan needs to serve several queries from one pass — but stays a
    /// plain envelope rather than a filter list, so it may also admit
    /// records in the gap *between* the operands' windows (each query
    /// re-checks its own predicate; pruning only ever changes cost).
    ///
    /// A dimension is constrained in the union only when **both** operands
    /// constrain it: if either side admits every region (or every height),
    /// so must the union. An operand that is an empty set contributes
    /// nothing and the other side is returned unchanged.
    pub fn union(self, other: ScanFilter) -> ScanFilter {
        if self.is_empty_set() {
            return other;
        }
        if other.is_empty_set() {
            return self;
        }
        let window = match (self.window(), other.window()) {
            (Some((s1, e1)), Some((s2, e2))) => Some((s1.min(s2), e1.max(e2))),
            _ => None,
        };
        let heights = match (self.heights(), other.heights()) {
            (Some((l1, h1)), Some((l2, h2))) => Some((l1.min(l2), h1.max(h2))),
            _ => None,
        };
        match (window, heights) {
            (None, None) => ScanFilter::All,
            (Some((start, end)), None) => ScanFilter::RegionOverlap { start, end },
            (None, Some((min, max))) => ScanFilter::HeightRange { min, max },
            (Some((start, end)), Some((min, max))) => ScanFilter::RegionAndHeight {
                start,
                end,
                min,
                max,
            },
        }
    }

    /// Whether this filter describes an empty set — an inverted window or
    /// height range, as produced by [`ScanFilter::and`] over disjoint
    /// constraints. An empty filter admits nothing at all.
    #[inline]
    fn is_empty_set(&self) -> bool {
        self.window().is_some_and(|(s, e)| s > e)
            || self.heights().is_some_and(|(min, max)| min > max)
    }

    /// Whether a page with zone `z` could hold a qualifying record. Pages
    /// without a zone are always admitted by the caller.
    #[inline]
    pub fn admits_zone(&self, z: &ZoneEntry) -> bool {
        if self.is_empty_set() {
            return false;
        }
        if let Some((start, end)) = self.window() {
            if z.lo > end || z.hi < start {
                return false;
            }
        }
        if let Some((min, max)) = self.heights() {
            if z.min_h > max || z.max_h < min {
                return false;
            }
        }
        true
    }

    /// Whether a record with the given hints qualifies. Missing hints admit
    /// (no information, no filtering — the operator re-checks anyway),
    /// except under an empty filter, which provably nothing satisfies.
    #[inline]
    pub fn admits_record(&self, bounds: Option<(u64, u64)>, height: Option<u32>) -> bool {
        if self.is_empty_set() {
            return false;
        }
        if let (Some((start, end)), Some((lo, hi))) = (self.window(), bounds) {
            if lo > end || hi < start {
                return false;
            }
        }
        if let (Some((min, max)), Some(h)) = (self.heights(), height) {
            if h < min || h > max {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone(lo: u64, hi: u64, min_h: u32, max_h: u32) -> ZoneEntry {
        ZoneEntry {
            lo,
            hi,
            min_h,
            max_h,
        }
    }

    #[test]
    fn zone_fold_and_merge_widen() {
        let mut z = ZoneEntry::of(10, 20, 3);
        z.fold(5, 12, 7);
        assert_eq!(z, zone(5, 20, 3, 7));
        let mut a = ZoneEntry::of(100, 200, 1);
        a.merge(&z);
        assert_eq!(a, zone(5, 200, 1, 7));
    }

    #[test]
    fn file_zone_merges_pages() {
        let mut fz = FileZones::default();
        fz.push(Some(ZoneEntry::of(10, 20, 2)));
        fz.push(None);
        fz.push(Some(ZoneEntry::of(1, 5, 6)));
        assert_eq!(fz.len(), 3);
        assert!(fz.any());
        let f = fz.file_zone().unwrap();
        assert_eq!((f.lo, f.hi, f.min_h, f.max_h), (1, 20, 2, 6));
        assert!(fz.page(1).is_none());
        assert_eq!(fz.page(0).unwrap().lo, 10);
        assert!(fz.page(9).is_none());
    }

    #[test]
    fn set_page_and_widen_maintain_the_map() {
        let mut fz = FileZones::default();
        fz.push(Some(ZoneEntry::of(10, 20, 2)));
        // Widening an existing zone folds the new record in.
        fz.widen(0, 5, 25, 4);
        assert_eq!(*fz.page(0).unwrap(), zone(5, 25, 2, 4));
        // Widening past the recorded length grows the map with an exact
        // zone for the new page; the gap pages stay untracked.
        fz.widen(3, 100, 200, 1);
        assert_eq!(fz.len(), 4);
        assert!(fz.page(1).is_none());
        assert_eq!(*fz.page(3).unwrap(), zone(100, 200, 1, 1));
        // A page whose zone was cleared (hintless record) stays cleared
        // under further widening: no information, no pruning.
        fz.set_page(0, None);
        fz.widen(0, 0, 1, 0);
        assert!(fz.page(0).is_none());
        // Rebuild-on-delete replaces the entry exactly.
        fz.set_page(3, Some(ZoneEntry::of(150, 160, 1)));
        assert_eq!(*fz.page(3).unwrap(), zone(150, 160, 1, 1));
    }

    #[test]
    fn filter_and_intersects() {
        let r = ScanFilter::RegionOverlap { start: 10, end: 50 };
        let h = ScanFilter::HeightRange { min: 2, max: 5 };
        assert_eq!(ScanFilter::All.and(ScanFilter::All), ScanFilter::All);
        assert_eq!(r.and(ScanFilter::All), r);
        assert_eq!(
            r.and(h),
            ScanFilter::RegionAndHeight {
                start: 10,
                end: 50,
                min: 2,
                max: 5
            }
        );
        // Overlapping windows intersect.
        assert_eq!(
            r.and(ScanFilter::RegionOverlap { start: 30, end: 99 }),
            ScanFilter::RegionOverlap { start: 30, end: 50 }
        );
    }

    #[test]
    fn filter_union_is_bounding_envelope() {
        let r1 = ScanFilter::RegionOverlap { start: 10, end: 50 };
        let r2 = ScanFilter::RegionOverlap {
            start: 100,
            end: 200,
        };
        // Two windows widen to their envelope (the gap is admitted too —
        // the union is a necessary condition, not an exact disjunction).
        assert_eq!(
            r1.union(r2),
            ScanFilter::RegionOverlap {
                start: 10,
                end: 200
            }
        );
        // A side with no window constraint unconstrains the union.
        assert_eq!(r1.union(ScanFilter::All), ScanFilter::All);
        assert_eq!(
            r1.union(ScanFilter::HeightRange { min: 2, max: 5 }),
            ScanFilter::All
        );
        // Height ranges widen dimension-wise when both sides have both.
        let f1 = r1.and(ScanFilter::HeightRange { min: 2, max: 5 });
        let f2 = r2.and(ScanFilter::HeightRange { min: 0, max: 3 });
        assert_eq!(
            f1.union(f2),
            ScanFilter::RegionAndHeight {
                start: 10,
                end: 200,
                min: 0,
                max: 5
            }
        );
        // An empty-set operand is an identity.
        let dead = ScanFilter::RegionOverlap { start: 60, end: 10 };
        assert_eq!(dead.union(r1), r1);
        assert_eq!(r1.union(dead), r1);
        // The union admits every zone either operand admits.
        for z in [
            ZoneEntry::of(0, 12, 3),
            ZoneEntry::of(150, 160, 1),
            ZoneEntry::of(60, 70, 2),
        ] {
            if f1.admits_zone(&z) || f2.admits_zone(&z) {
                assert!(f1.union(f2).admits_zone(&z));
            }
        }
    }

    #[test]
    fn filter_union_empty_seed_folds_like_a_set_union() {
        // The shared-scan / shard-envelope composition seed: an inverted
        // window admits nothing and is the identity of `union`, so folding
        // any filter list from it yields exactly their envelope.
        let seed = ScanFilter::RegionOverlap { start: 1, end: 0 };
        assert!(!seed.admits_zone(&ZoneEntry::of(1, u64::MAX, 0)));
        assert!(!seed.admits_record(None, None));
        // Folding nothing stays empty; the empty seed never widens a fold.
        assert_eq!(seed.union(seed), seed);
        let parts = [
            ScanFilter::RegionOverlap { start: 40, end: 60 },
            ScanFilter::RegionOverlap { start: 5, end: 9 },
            ScanFilter::RegionOverlap {
                start: 200,
                end: 300,
            },
        ];
        let folded = parts.iter().fold(seed, |acc, &f| acc.union(f));
        assert_eq!(folded, ScanFilter::RegionOverlap { start: 5, end: 300 });
        // An inverted *height* range is an empty set and an identity too.
        let dead_h = ScanFilter::HeightRange { min: 9, max: 2 };
        assert!(!dead_h.admits_record(None, Some(5)));
        assert_eq!(dead_h.union(parts[0]), parts[0]);
        assert_eq!(parts[0].union(dead_h), parts[0]);
    }

    #[test]
    fn filter_union_disjoint_regions_and_height_widening() {
        // Disjoint shard envelopes: the union spans both plus the gap
        // between them (it is a bounding envelope, never a filter list).
        let lo_shard = ScanFilter::RegionOverlap { start: 1, end: 511 };
        let hi_shard = ScanFilter::RegionOverlap {
            start: 512,
            end: 1023,
        };
        let u = lo_shard.union(hi_shard);
        assert_eq!(
            u,
            ScanFilter::RegionOverlap {
                start: 1,
                end: 1023
            }
        );
        assert!(u.admits_record(Some((511, 512)), None), "gap is admitted");
        // Height ranges widen to cover both operands, ends included.
        let h1 = ScanFilter::HeightRange { min: 3, max: 3 };
        let h2 = ScanFilter::HeightRange { min: 7, max: 9 };
        assert_eq!(h1.union(h2), ScanFilter::HeightRange { min: 3, max: 9 });
        assert_eq!(h2.union(h1), ScanFilter::HeightRange { min: 3, max: 9 });
        for h in [3u32, 5, 9] {
            assert!(h1.union(h2).admits_record(None, Some(h)));
        }
        assert!(h1.union(h2).admits_record(None, Some(4)), "gap height");
    }

    /// Property sweep: for random operand pairs, the union admits every
    /// zone and record either operand admits, and union with the empty
    /// seed changes nothing. (`union` must stay a sound envelope — a page
    /// it rejects can match no contributing query.)
    #[test]
    fn filter_union_property_admits_superset() {
        let mut x = 0x5EED_CAFE_0123u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mk = |rnd: &mut dyn FnMut() -> u64| {
            let a = rnd() % 1000;
            let b = rnd() % 1000;
            let (lo, hi) = (rnd() % 12, rnd() % 12);
            match rnd() % 4 {
                0 => ScanFilter::All,
                1 => ScanFilter::RegionOverlap { start: a, end: b },
                2 => ScanFilter::HeightRange {
                    min: lo as u32,
                    max: hi as u32,
                },
                _ => ScanFilter::RegionAndHeight {
                    start: a,
                    end: b,
                    min: lo as u32,
                    max: hi as u32,
                },
            }
        };
        let seed = ScanFilter::RegionOverlap { start: 1, end: 0 };
        for _ in 0..2000 {
            let f1 = mk(&mut rnd);
            let f2 = mk(&mut rnd);
            let u = f1.union(f2);
            // Identity holds structurally for non-empty operands; an empty
            // operand may come back as the (equally empty) seed instead.
            if f1.admits_record(Some((0, u64::MAX)), None) {
                assert_eq!(seed.union(f1), f1);
                assert_eq!(f1.union(seed), f1);
            } else {
                assert!(!seed.union(f1).admits_record(Some((0, u64::MAX)), None));
            }
            for _ in 0..8 {
                let (zl, zh) = (rnd() % 1100, rnd() % 1100);
                let z = zone(zl.min(zh), zl.max(zh), (rnd() % 12) as u32, 12);
                if f1.admits_zone(&z) || f2.admits_zone(&z) {
                    assert!(u.admits_zone(&z), "{f1:?} ∪ {f2:?} rejected {z:?}");
                }
                let bounds = Some((z.lo, z.hi));
                let h = Some(z.min_h);
                if f1.admits_record(bounds, h) || f2.admits_record(bounds, h) {
                    assert!(u.admits_record(bounds, h));
                }
            }
        }
    }

    #[test]
    fn filter_admits_zone_is_interval_overlap() {
        let f = ScanFilter::RegionOverlap { start: 10, end: 50 };
        assert!(f.admits_zone(&ZoneEntry::of(50, 60, 0)));
        assert!(f.admits_zone(&ZoneEntry::of(0, 10, 0)));
        assert!(!f.admits_zone(&ZoneEntry::of(51, 60, 0)));
        assert!(!f.admits_zone(&ZoneEntry::of(0, 9, 0)));
        let f = ScanFilter::HeightRange { min: 2, max: 4 };
        assert!(f.admits_zone(&zone(0, 0, 0, 4)));
        assert!(!f.admits_zone(&zone(0, 0, 0, 1)));
        // An empty-intersection conjunction admits nothing.
        let dead = ScanFilter::RegionOverlap { start: 60, end: 10 };
        assert!(!dead.admits_zone(&zone(0, u64::MAX, 0, 63)));
    }

    #[test]
    fn filter_admits_record_missing_hints_pass() {
        let f = ScanFilter::RegionAndHeight {
            start: 10,
            end: 50,
            min: 2,
            max: 4,
        };
        assert!(f.admits_record(None, None));
        assert!(f.admits_record(Some((40, 60)), Some(3)));
        assert!(!f.admits_record(Some((51, 60)), Some(3)));
        assert!(!f.admits_record(Some((40, 60)), Some(5)));
        assert!(ScanFilter::All.admits_record(Some((0, 1)), Some(63)));
    }
}
