//! The buffer pool: a bounded set of page frames with clock replacement.
//!
//! This is the Minibase buffer manager role: every algorithm receives a
//! budget of `b` frames and *all* page access goes through [`BufferPool`],
//! so the I/O counters in [`crate::stats::IoStats`] faithfully reflect what
//! a disk-resident execution would do. Guards ([`PageRef`], [`PageMut`])
//! pin pages RAII-style; a pinned page is never evicted.
//!
//! The pool is single-threaded (interior mutability via `RefCell`), which
//! matches the paper's sequential algorithms and keeps runs deterministic.

use std::cell::{Ref, RefCell, RefMut};
use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, DerefMut};

use crate::disk::Disk;
use crate::page::{FileId, PageBuf, PageId, PAGE_SIZE};
use crate::stats::IoStats;

/// Errors surfaced by the buffer pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Every frame is pinned; the requesting operator exceeded its memory
    /// budget. Algorithms are designed to pin at most their partition
    /// fan-out plus a constant, so hitting this is a logic error upstream.
    NoFreeFrames {
        /// The pool capacity in frames.
        capacity: usize,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::NoFreeFrames { capacity } => {
                write!(f, "all {capacity} buffer frames are pinned")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Hit/miss counters of the pool itself (page transfers are counted by
/// [`Disk`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests satisfied from a resident frame.
    pub hits: u64,
    /// Requests that had to read from disk (or claim a fresh frame).
    pub misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct FrameMeta {
    pid: Option<PageId>,
    pin: u32,
    dirty: bool,
    referenced: bool,
}

struct Meta {
    table: HashMap<PageId, usize>,
    frames: Vec<FrameMeta>,
    hand: usize,
    stats: PoolStats,
}

/// A clock-replacement buffer pool over a [`Disk`].
pub struct BufferPool {
    disk: RefCell<Disk>,
    meta: RefCell<Meta>,
    /// Frame data cells. The vector is sized at construction and never
    /// resized, so element borrows remain valid for the pool's lifetime.
    data: Vec<RefCell<Box<PageBuf>>>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames (the paper's `b`,
    /// `NumBufferPages`) over `disk`.
    pub fn new(disk: Disk, capacity: usize) -> Self {
        assert!(capacity >= 1, "a buffer pool needs at least one frame");
        BufferPool {
            disk: RefCell::new(disk),
            meta: RefCell::new(Meta {
                table: HashMap::with_capacity(capacity * 2),
                frames: vec![
                    FrameMeta { pid: None, pin: 0, dirty: false, referenced: false };
                    capacity
                ],
                hand: 0,
                stats: PoolStats::default(),
            }),
            data: (0..capacity)
                .map(|_| RefCell::new(Box::new([0u8; PAGE_SIZE])))
                .collect(),
        }
    }

    /// Number of frames.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Pool hit/miss counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.meta.borrow().stats
    }

    /// Disk transfer counters (the headline experiment metric).
    pub fn io_stats(&self) -> IoStats {
        self.disk.borrow().stats()
    }

    /// Creates a new file on the underlying disk.
    pub fn create_file(&self) -> FileId {
        self.disk.borrow_mut().create_file()
    }

    /// Number of pages in `file`.
    pub fn num_pages(&self, file: FileId) -> u32 {
        self.disk.borrow().num_pages(file)
    }

    /// Drops a file: resident frames are discarded *without* write-back
    /// (their contents are dead), then the disk space is released.
    ///
    /// # Panics
    /// Panics if any page of the file is still pinned.
    pub fn delete_file(&self, file: FileId) {
        let mut meta = self.meta.borrow_mut();
        let victims: Vec<(PageId, usize)> = meta
            .table
            .iter()
            .filter(|(pid, _)| pid.file == file)
            .map(|(pid, &f)| (*pid, f))
            .collect();
        for (pid, f) in victims {
            assert_eq!(meta.frames[f].pin, 0, "deleting file with pinned page {pid}");
            meta.table.remove(&pid);
            meta.frames[f] = FrameMeta { pid: None, pin: 0, dirty: false, referenced: false };
        }
        drop(meta);
        self.disk.borrow_mut().delete_file(file);
    }

    /// Fetches an existing page for reading.
    pub fn read_page(&self, pid: PageId) -> Result<PageRef<'_>, PoolError> {
        let frame = self.fetch(pid, false, false)?;
        Ok(PageRef {
            pool: self,
            frame,
            data: self.data[frame].borrow(),
        })
    }

    /// Fetches an existing page for modification; the frame is marked dirty.
    pub fn write_page(&self, pid: PageId) -> Result<PageMut<'_>, PoolError> {
        let frame = self.fetch(pid, true, false)?;
        Ok(PageMut {
            pool: self,
            frame,
            data: self.data[frame].borrow_mut(),
        })
    }

    /// Appends a full page image to `file`, writing through to disk
    /// without occupying a frame.
    ///
    /// Bulk writers (heap writers, sort runs, index bulk loads) use this:
    /// their output is written exactly once and read later, so caching it
    /// would only pollute the pool — and deferring the write until clock
    /// eviction would turn a sequential output stream into random
    /// write-back, which is exactly the pathology real engines avoid by
    /// bypassing the buffer pool for bulk output.
    pub fn append_page_through(&self, file: FileId, buf: &PageBuf) -> u32 {
        let mut disk = self.disk.borrow_mut();
        let page = disk.allocate_page(file);
        disk.write_page(PageId::new(file, page), buf);
        page
    }

    /// Allocates a fresh page in `file` and returns it pinned for writing.
    /// No read is charged: the page starts zeroed.
    pub fn new_page(&self, file: FileId) -> Result<(u32, PageMut<'_>), PoolError> {
        let page = self.disk.borrow_mut().allocate_page(file);
        let pid = PageId::new(file, page);
        let frame = self.fetch(pid, true, true)?;
        let mut data = self.data[frame].borrow_mut();
        data.fill(0);
        Ok((page, PageMut { pool: self, frame, data }))
    }

    /// Flushes and then discards every unpinned frame — a cold-cache reset
    /// used between experiment runs so each algorithm starts from disk.
    ///
    /// # Panics
    /// Panics if any frame is still pinned (experiments must not hold
    /// guards across runs).
    pub fn evict_all(&self) {
        self.flush_all();
        let mut meta = self.meta.borrow_mut();
        for fm in &mut meta.frames {
            assert_eq!(fm.pin, 0, "evict_all with a pinned frame");
            *fm = FrameMeta { pid: None, pin: 0, dirty: false, referenced: false };
        }
        meta.table.clear();
        meta.hand = 0;
    }

    /// Writes back every dirty frame (leaving pages resident and clean).
    pub fn flush_all(&self) {
        let mut meta = self.meta.borrow_mut();
        let mut disk = self.disk.borrow_mut();
        // Flush in page order for sequential write-back, as a real pool would.
        let mut dirty: Vec<(PageId, usize)> = meta
            .frames
            .iter()
            .enumerate()
            .filter_map(|(i, fm)| match (fm.dirty, fm.pid) {
                (true, Some(pid)) => Some((pid, i)),
                _ => None,
            })
            .collect();
        dirty.sort_unstable();
        for (pid, i) in dirty {
            disk.write_page(pid, &self.data[i].borrow());
            meta.frames[i].dirty = false;
        }
    }

    /// Core fetch: returns the (pinned) frame index holding `pid`.
    /// `fresh` skips the disk read for newly allocated pages.
    fn fetch(&self, pid: PageId, for_write: bool, fresh: bool) -> Result<usize, PoolError> {
        let mut meta = self.meta.borrow_mut();
        if let Some(&f) = meta.table.get(&pid) {
            meta.stats.hits += 1;
            let fm = &mut meta.frames[f];
            fm.pin += 1;
            fm.referenced = true;
            fm.dirty |= for_write;
            return Ok(f);
        }
        meta.stats.misses += 1;
        let victim = self.pick_victim(&mut meta)?;
        // Evict the old resident, writing back if dirty.
        if let Some(old) = meta.frames[victim].pid {
            if meta.frames[victim].dirty {
                self.disk
                    .borrow_mut()
                    .write_page(old, &self.data[victim].borrow());
            }
            meta.table.remove(&old);
        }
        if !fresh {
            self.disk
                .borrow_mut()
                .read_page(pid, &mut self.data[victim].borrow_mut());
        }
        meta.frames[victim] = FrameMeta {
            pid: Some(pid),
            pin: 1,
            dirty: for_write,
            referenced: true,
        };
        meta.table.insert(pid, victim);
        Ok(victim)
    }

    /// Clock sweep: find an unpinned frame, giving referenced frames a
    /// second chance.
    fn pick_victim(&self, meta: &mut Meta) -> Result<usize, PoolError> {
        let n = meta.frames.len();
        for _ in 0..2 * n {
            let i = meta.hand;
            meta.hand = (meta.hand + 1) % n;
            let fm = &mut meta.frames[i];
            if fm.pin > 0 {
                continue;
            }
            if fm.referenced {
                fm.referenced = false;
                continue;
            }
            return Ok(i);
        }
        Err(PoolError::NoFreeFrames { capacity: n })
    }

    fn unpin(&self, frame: usize) {
        let mut meta = self.meta.borrow_mut();
        let fm = &mut meta.frames[frame];
        debug_assert!(fm.pin > 0, "unpin of unpinned frame");
        fm.pin -= 1;
    }
}

/// A pinned, read-only page. Unpins on drop.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    frame: usize,
    data: Ref<'a, Box<PageBuf>>,
}

impl Deref for PageRef<'_> {
    type Target = PageBuf;

    #[inline]
    fn deref(&self) -> &PageBuf {
        &self.data
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.frame);
    }
}

/// A pinned, writable page (its frame is marked dirty). Unpins on drop;
/// the actual disk write happens on eviction or [`BufferPool::flush_all`].
pub struct PageMut<'a> {
    pool: &'a BufferPool,
    frame: usize,
    data: RefMut<'a, Box<PageBuf>>,
}

impl Deref for PageMut<'_> {
    type Target = PageBuf;

    #[inline]
    fn deref(&self) -> &PageBuf {
        &self.data
    }
}

impl DerefMut for PageMut<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut PageBuf {
        &mut self.data
    }
}

impl Drop for PageMut<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Disk::in_memory_free(), frames)
    }

    #[test]
    fn write_then_read_through_pool() {
        let p = pool(4);
        let f = p.create_file();
        let (n0, mut g) = p.new_page(f).unwrap();
        assert_eq!(n0, 0);
        g[0] = 42;
        g[100] = 7;
        drop(g);
        let r = p.read_page(PageId::new(f, 0)).unwrap();
        assert_eq!(r[0], 42);
        assert_eq!(r[100], 7);
        // Still resident: zero disk reads so far, zero writes (not evicted).
        let io = p.io_stats();
        assert_eq!(io.reads(), 0);
        assert_eq!(io.writes(), 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2);
        let f = p.create_file();
        for i in 0..4u8 {
            let (_, mut g) = p.new_page(f).unwrap();
            g[0] = i;
        }
        // Pages 0 and 1 were evicted (written); 2 and 3 are resident dirty.
        assert_eq!(p.io_stats().writes(), 2);
        let r = p.read_page(PageId::new(f, 0)).unwrap();
        assert_eq!(r[0], 0);
        drop(r);
        let r = p.read_page(PageId::new(f, 3)).unwrap();
        assert_eq!(r[0], 3);
    }

    #[test]
    fn flush_all_persists_and_keeps_resident() {
        let p = pool(4);
        let f = p.create_file();
        for i in 0..3u8 {
            let (_, mut g) = p.new_page(f).unwrap();
            g[0] = i + 10;
        }
        p.flush_all();
        assert_eq!(p.io_stats().writes(), 3);
        // Re-read hits the pool, no disk read.
        let before = p.io_stats().reads();
        let r = p.read_page(PageId::new(f, 1)).unwrap();
        assert_eq!(r[0], 11);
        assert_eq!(p.io_stats().reads(), before);
        // Clean frames are not rewritten on a second flush.
        drop(r);
        p.flush_all();
        assert_eq!(p.io_stats().writes(), 3);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let p = pool(2);
        let f = p.create_file();
        let (_, g0) = p.new_page(f).unwrap(); // pin page 0
        for _ in 0..5 {
            let (_, _g) = p.new_page(f).unwrap(); // cycles through frame 2
        }
        // Page 0 must still be resident and intact.
        drop(g0);
        let r = p.read_page(PageId::new(f, 0)).unwrap();
        assert_eq!(r[0], 0);
        assert_eq!(p.pool_stats().hits, 1);
    }

    #[test]
    fn no_free_frames_is_reported() {
        let p = pool(2);
        let f = p.create_file();
        let (_, _g0) = p.new_page(f).unwrap();
        let (_, _g1) = p.new_page(f).unwrap();
        let err = p.new_page(f).map(|_| ()).unwrap_err();
        assert_eq!(err, PoolError::NoFreeFrames { capacity: 2 });
    }

    #[test]
    fn hit_and_miss_accounting() {
        let p = pool(2);
        let f = p.create_file();
        let (_, g) = p.new_page(f).unwrap();
        drop(g);
        drop(p.read_page(PageId::new(f, 0)).unwrap()); // hit
        drop(p.read_page(PageId::new(f, 0)).unwrap()); // hit
        let s = p.pool_stats();
        assert_eq!(s.misses, 1); // the new_page claim
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn delete_file_discards_dirty_frames() {
        let p = pool(4);
        let f = p.create_file();
        let (_, mut g) = p.new_page(f).unwrap();
        g[0] = 9;
        drop(g);
        p.delete_file(f);
        // Dirty frame was discarded: no write-back happened.
        assert_eq!(p.io_stats().writes(), 0);
        assert_eq!(p.num_pages(f), 0);
        // The frame is reusable.
        let f2 = p.create_file();
        let (_, _g) = p.new_page(f2).unwrap();
    }

    #[test]
    fn clock_gives_second_chance() {
        let p = pool(3);
        let f = p.create_file();
        for _ in 0..3 {
            let (_, _g) = p.new_page(f).unwrap();
        }
        // Fault in page 3: the sweep clears every reference bit and evicts
        // page 0, leaving pages 1 and 2 resident but unreferenced.
        let (_, g) = p.new_page(f).unwrap();
        drop(g);
        // Re-touch page 2: its reference bit protects it from the next sweep.
        drop(p.read_page(PageId::new(f, 2)).unwrap());
        // Fault in page 4: the victim must be the unreferenced page 1,
        // not the just-touched page 2.
        let (_, g) = p.new_page(f).unwrap();
        drop(g);
        let before = p.io_stats().reads();
        drop(p.read_page(PageId::new(f, 2)).unwrap());
        assert_eq!(p.io_stats().reads(), before, "page 2 was evicted");
        drop(p.read_page(PageId::new(f, 1)).unwrap());
        assert_eq!(p.io_stats().reads(), before + 1, "page 1 should be gone");
    }

    #[test]
    fn many_pages_roundtrip_under_small_pool() {
        let p = pool(3);
        let f = p.create_file();
        for i in 0..50u32 {
            let (_, mut g) = p.new_page(f).unwrap();
            g[..4].copy_from_slice(&i.to_le_bytes());
        }
        for i in (0..50u32).rev() {
            let r = p.read_page(PageId::new(f, i)).unwrap();
            assert_eq!(u32::from_le_bytes(r[..4].try_into().unwrap()), i);
        }
    }
}
