//! The buffer pool: a bounded set of page frames with clock replacement.
//!
//! This is the Minibase buffer manager role: every algorithm receives a
//! budget of `b` frames and *all* page access goes through [`BufferPool`],
//! so the I/O counters in [`crate::stats::IoStats`] faithfully reflect what
//! a disk-resident execution would do. Guards ([`PageRef`], [`PageMut`])
//! pin pages RAII-style; a pinned page is never evicted.
//!
//! # Concurrency
//!
//! The pool is thread-safe (`Send + Sync`) so partition joins can fan out
//! over worker threads sharing one frame budget:
//!
//! * The page table (pid → frame) is **lock-striped** into
//!   [`SHARD_COUNT`] shards, each behind its own mutex, so concurrent
//!   lookups of unrelated pages do not serialize.
//! * The **frames themselves form one global arena** — deliberately *not*
//!   partitioned per shard. Operators such as the external-sort merge
//!   legitimately pin up to `b - 1` arbitrary pages at once; hashing pins
//!   into fixed per-shard quotas would make `NoFreeFrames` fire spuriously.
//!   The budget `b` therefore bounds the *total* pinned frames across all
//!   threads: there are exactly `b` frames and a pin occupies one.
//! * Each frame has a tiny mutex for its metadata (pid, pin count, dirty,
//!   referenced, claimed) and an atomic reader-writer latch for its data,
//!   so page guards are `Send` (std lock guards are not).
//! * Hit/miss counters are atomics, incremented **exactly once per
//!   request**: a hit at the moment of pinning a resident frame, a miss at
//!   the moment a freshly loaded frame is published. A thread that loses a
//!   load race (two threads miss on the same page; one wins the table slot)
//!   counts nothing and retries, then counts a single hit.
//! * Lock order is `shard → frame meta` and `clock hand → frame meta`,
//!   with the disk mutex taken last and alone; eviction never holds a
//!   frame-meta lock while taking a shard lock (it *claims* the frame,
//!   releases the meta lock, and works on the claimed frame, which no other
//!   thread will pin).
//!
//! Single-threaded use is the common case and behaves exactly like the
//! classic sequential pool: the clock sweep, second-chance semantics and
//! hit/miss accounting are unchanged, so runs remain deterministic.
//!
//! # Read-ahead and write coalescing
//!
//! Callers that know their access pattern declare it through
//! [`crate::access::ScanOptions`]. A miss on a
//! [`Sequential`](crate::access::AccessPattern::Sequential) fetch
//! ([`BufferPool::read_page_with`]) triggers best-effort read-ahead: the
//! following pages are staged into claimed frames and loaded with one
//! vectored [`Disk::read_pages`] — one head movement for the whole batch.
//! Prefetch never blocks (it claims only frames that are free *right now*),
//! never evicts pinned pages, stops at the first already-resident page, and
//! swallows device faults: a speculative read that fails leaves the page to
//! the on-demand path, which surfaces the fault if it persists. Prefetched
//! pages are published unpinned with their reference bit set; a later
//! request for one counts a pool *hit* (the [`PoolStats`] identity
//! `hits + misses == requests` is unaffected; [`BufferPool::prefetched`]
//! counts the speculative loads separately). Dirty victims evicted by a
//! prefetch batch and by [`BufferPool::flush_all`] are themselves grouped
//! into contiguous runs and written with vectored [`Disk::write_pages`].

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::access::{AccessPattern, ScanOptions};
use crate::disk::{BatchError, Disk, IoError};
use crate::page::{FileId, PageBuf, PageId, PAGE_SIZE};
use crate::stats::{AtomicIoStats, IoStats};
use crate::zone::FileZones;

/// Longest contiguous run [`BufferPool::flush_all`] coalesces into one
/// vectored write. Bounds how long the run's frame latches are held.
const FLUSH_RUN_MAX: usize = 64;

/// Number of page-table shards. Sixteen keeps striping overhead trivial for
/// the tiny pools tests use while comfortably exceeding the worker counts
/// the partition scheduler spawns (a shard mutex is only contended when two
/// workers touch pages hashing to the same stripe at the same instant).
pub const SHARD_COUNT: usize = 16;

/// Errors surfaced by the buffer pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Every frame is pinned; the requesting operator exceeded its memory
    /// budget. Algorithms are designed to pin at most their partition
    /// fan-out plus a constant, so hitting this is a logic error upstream.
    NoFreeFrames {
        /// The pool capacity in frames.
        capacity: usize,
    },
    /// A page transfer failed at the device (after the disk layer's
    /// transient-retry budget was exhausted, if the fault was transient).
    /// Carries the failing [`PageId`] via [`IoError::pid`].
    Io(IoError),
    /// A page transferred fine but its contents fail a structural check
    /// (record count beyond page capacity, a record rejected by
    /// [`crate::record::FixedRecord::validate`]). The device is healthy;
    /// the *data* is not.
    Corrupt {
        /// The page whose contents failed validation.
        pid: PageId,
        /// What the check found.
        reason: &'static str,
    },
}

impl PoolError {
    /// The page a device fault or corruption was detected on, if any.
    pub fn failing_page(&self) -> Option<PageId> {
        match self {
            PoolError::Io(e) => Some(e.pid),
            PoolError::Corrupt { pid, .. } => Some(*pid),
            PoolError::NoFreeFrames { .. } => None,
        }
    }
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::NoFreeFrames { capacity } => {
                write!(f, "all {capacity} buffer frames are pinned")
            }
            PoolError::Io(e) => write!(f, "page I/O failed: {e}"),
            PoolError::Corrupt { pid, reason } => {
                write!(f, "corrupt page {pid}: {reason}")
            }
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Io(e) => Some(e),
            PoolError::NoFreeFrames { .. } | PoolError::Corrupt { .. } => None,
        }
    }
}

impl From<IoError> for PoolError {
    fn from(e: IoError) -> Self {
        PoolError::Io(e)
    }
}

/// Hit/miss counters of the pool itself (page transfers are counted by
/// [`Disk`]), plus the zone-map pruning counters. A skipped page is never
/// requested, so it appears in neither `hits` nor `misses` and the
/// `hits + misses == requests` identity is untouched by pruning; the two
/// pruning counters are monotone globals like the rest, so phase tiling
/// (field-wise snapshot diffs summing exactly to the run total) extends to
/// them unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests satisfied from a resident frame.
    pub hits: u64,
    /// Requests that had to read from disk (or claim a fresh frame).
    pub misses: u64,
    /// Pages a filtered scan skipped via its zone map — never fetched,
    /// charged zero I/O.
    pub pages_skipped: u64,
    /// Records a filtered scan dropped after page decode (admitted by the
    /// page zone, rejected by the record-level filter).
    pub records_filtered: u64,
    /// Pages heap writers sealed in the packed layout ([`crate::codec`]).
    pub pages_packed: u64,
    /// Bytes the packed pages' records would have occupied raw
    /// (`records × R::SIZE`) — the numerator of the compression ratio.
    pub packed_pre_bytes: u64,
    /// Bytes the packed pages actually used (header + payload).
    pub packed_post_bytes: u64,
    /// Packed-page decode passes (one per page per consuming scan, for
    /// both the record-at-a-time cache fill and the streaming batch path).
    pub packed_decodes: u64,
}

impl PoolStats {
    /// Pages requested through the pool (hits + misses). Skipped pages are
    /// not requests.
    #[inline]
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Counter-wise difference `self - earlier`; panics on underflow, which
    /// would indicate mismatched snapshots.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            pages_skipped: self.pages_skipped - earlier.pages_skipped,
            records_filtered: self.records_filtered - earlier.records_filtered,
            pages_packed: self.pages_packed - earlier.pages_packed,
            packed_pre_bytes: self.packed_pre_bytes - earlier.packed_pre_bytes,
            packed_post_bytes: self.packed_post_bytes - earlier.packed_post_bytes,
            packed_decodes: self.packed_decodes - earlier.packed_decodes,
        }
    }

    /// Adds `other` counter-wise into `self` — the accumulation phase
    /// tiling and coverage sums use, so new counters extend the trace
    /// invariants without touching every summation site.
    pub fn absorb(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.pages_skipped += other.pages_skipped;
        self.records_filtered += other.records_filtered;
        self.pages_packed += other.pages_packed;
        self.packed_pre_bytes += other.packed_pre_bytes;
        self.packed_post_bytes += other.packed_post_bytes;
        self.packed_decodes += other.packed_decodes;
    }
}

/// One instant's view of both counter families the pool exposes — disk
/// transfers ([`IoStats`]) and pool hits/misses ([`PoolStats`]) — taken
/// together so phase instrumentation can diff a single value instead of
/// pairing up two snapshots by hand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Disk transfer counters at the snapshot instant.
    pub io: IoStats,
    /// Pool hit/miss counters at the snapshot instant.
    pub pool: PoolStats,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier`; panics on underflow.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            io: self.io.since(&earlier.io),
            pool: self.pool.since(&earlier.pool),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FrameMeta {
    pid: Option<PageId>,
    pin: u32,
    dirty: bool,
    referenced: bool,
    /// Set while a missing thread owns this frame for eviction + reload.
    /// A claimed frame is invisible to hits and skipped by the clock.
    claimed: bool,
    /// Highest WAL LSN whose log record covers this frame's dirty bytes.
    /// Zero means "no WAL dependency" (bulk and non-logged writes). The
    /// pool may not write a frame with `lsn > 0` back to disk before the
    /// registered [`LsnGate`] confirms the log is durable through it —
    /// the WAL-before-page invariant.
    lsn: u64,
}

impl FrameMeta {
    const EMPTY: FrameMeta = FrameMeta {
        pid: None,
        pin: 0,
        dirty: false,
        referenced: false,
        claimed: false,
        lsn: 0,
    };
}

/// A frame index claimed off the clock, with the evicted resident's
/// `(pid, dirty, lsn)` if one must be written back first.
type ClaimedVictim = (usize, Option<(PageId, bool, u64)>);

/// The write-ahead log's side of the WAL-before-page protocol. The pool
/// calls [`LsnGate::flush_up_to`] before any dirty frame stamped with an
/// LSN ([`PageMut::stamp_lsn`]) reaches disk — on clock eviction, on
/// prefetch victim write-back, and on explicit flushes. The gate receives
/// the pool so it can write log pages through [`BufferPool::write_page_through`];
/// it must never fetch frames (that could recurse into eviction).
pub trait LsnGate: Send + Sync {
    /// Makes every log record with `lsn' <= lsn` durable, or fails with
    /// the I/O error that prevented it (the page write-back is then
    /// abandoned and the frame stays dirty).
    fn flush_up_to(&self, pool: &BufferPool, lsn: u64) -> Result<(), PoolError>;
}

/// A spinning reader-writer latch over a frame's data. `std::sync::RwLock`
/// guards are `!Send`, and join workers must be able to carry pinned pages
/// across `thread::scope` boundaries, so the pool rolls its own: the low 31
/// bits count readers, the high bit marks a writer. Frames are latched for
/// the duration of a guard only; contention is rare (two guards on one page
/// at once) and short, so spin + yield beats parking.
struct RwLatch(AtomicU32);

const WRITER: u32 = 1 << 31;

impl RwLatch {
    const fn new() -> Self {
        RwLatch(AtomicU32::new(0))
    }

    fn lock_shared(&self) {
        loop {
            let s = self.0.load(Ordering::Relaxed);
            if s & WRITER == 0
                && self
                    .0
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
            if s & WRITER != 0 {
                std::thread::yield_now();
            }
        }
    }

    fn lock_exclusive(&self) {
        loop {
            if self
                .0
                .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    fn unlock_shared(&self) {
        self.0.fetch_sub(1, Ordering::Release);
    }

    fn unlock_exclusive(&self) {
        self.0.store(0, Ordering::Release);
    }
}

/// One frame's data cell. Access discipline: shared through the latch for
/// guards; lock-free for a thread that holds the frame *claimed* (no guard
/// exists on a claimed frame and none can be created).
struct FrameData {
    latch: RwLatch,
    buf: UnsafeCell<Box<PageBuf>>,
}

// SAFETY: all access to `buf` goes through the latch or through claim
// ownership (mutually exclusive by construction, see `FrameData` docs).
unsafe impl Sync for FrameData {}

/// A clock-replacement buffer pool over a [`Disk`]. `Send + Sync`; see the
/// module docs for the locking protocol.
pub struct BufferPool {
    disk: Mutex<Disk>,
    /// Live I/O counters, shared with the disk; readable without the disk
    /// lock so `io_stats()` never serializes against worker transfers.
    io: Arc<AtomicIoStats>,
    /// Lock-striped page table: pid → frame index.
    shards: Vec<Mutex<HashMap<PageId, usize>>>,
    /// Per-frame metadata. Sized at construction, never resized.
    meta: Vec<Mutex<FrameMeta>>,
    /// Per-frame page images, same indexing as `meta`.
    data: Vec<FrameData>,
    /// Clock hand. Held for a whole sweep, serializing victim selection.
    hand: Mutex<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Pages loaded speculatively by read-ahead. Not part of [`PoolStats`]:
    /// prefetches are not requests, so they must not disturb the
    /// `hits + misses == requests` identity phase tiling relies on.
    prefetched: AtomicU64,
    /// Pages filtered scans skipped via zone maps (zero I/O charged).
    skipped: AtomicU64,
    /// Records filtered scans dropped at record granularity.
    filtered: AtomicU64,
    /// Pages heap writers sealed packed, plus their raw-equivalent and
    /// actual byte footprints, and decode passes by scans.
    packed_pages: AtomicU64,
    packed_pre: AtomicU64,
    packed_post: AtomicU64,
    packed_decodes: AtomicU64,
    /// Zone maps registered per heap file (see [`crate::zone`]); shared
    /// with every concurrent scan through the `Arc`, dropped with the file.
    zones: Mutex<HashMap<FileId, Arc<FileZones>>>,
    /// The registered WAL gate, if a write-ahead log is attached. Consulted
    /// before every write-back of a dirty frame whose `lsn` is non-zero.
    gate: Mutex<Option<Arc<dyn LsnGate>>>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames (the paper's `b`,
    /// `NumBufferPages`) over `disk`.
    pub fn new(disk: Disk, capacity: usize) -> Self {
        assert!(capacity >= 1, "a buffer pool needs at least one frame");
        let io = disk.stats_handle();
        BufferPool {
            disk: Mutex::new(disk),
            io,
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::with_capacity(capacity / SHARD_COUNT + 1)))
                .collect(),
            meta: (0..capacity)
                .map(|_| Mutex::new(FrameMeta::EMPTY))
                .collect(),
            data: (0..capacity)
                .map(|_| FrameData {
                    latch: RwLatch::new(),
                    buf: UnsafeCell::new(Box::new([0u8; PAGE_SIZE])),
                })
                .collect(),
            hand: Mutex::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            prefetched: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            filtered: AtomicU64::new(0),
            packed_pages: AtomicU64::new(0),
            packed_pre: AtomicU64::new(0),
            packed_post: AtomicU64::new(0),
            packed_decodes: AtomicU64::new(0),
            zones: Mutex::new(HashMap::new()),
            gate: Mutex::new(None),
        }
    }

    /// Attaches (or detaches) the write-ahead log's [`LsnGate`]. With a
    /// gate registered, no dirty frame stamped via [`PageMut::stamp_lsn`]
    /// reaches disk before the log is durable through its LSN.
    pub fn set_lsn_gate(&self, gate: Option<Arc<dyn LsnGate>>) {
        *self.gate.lock().unwrap() = gate;
    }

    /// Enforces WAL-before-page for a frame about to be written back: a
    /// no-op for unstamped frames (`lsn == 0`) or when no gate is
    /// registered. Must be called *before* taking the disk lock — the gate
    /// writes log pages through it.
    fn gate_lsn(&self, lsn: u64) -> Result<(), PoolError> {
        if lsn == 0 {
            return Ok(());
        }
        let gate = self.gate.lock().unwrap().clone();
        match gate {
            Some(g) => g.flush_up_to(self, lsn),
            None => Ok(()),
        }
    }

    #[inline]
    fn shard_of(&self, pid: PageId) -> &Mutex<HashMap<PageId, usize>> {
        // Fibonacci hash of (file, page); shards are a power of two.
        let key = ((pid.file.0 as u64) << 32) | pid.page as u64;
        let h = key.wrapping_mul(0x9E3779B97F4A7C15);
        &self.shards[(h >> 32) as usize & (SHARD_COUNT - 1)]
    }

    /// Number of frames.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// The underlying disk's cost model — what sibling disks (e.g. one
    /// simulated spindle per region-range shard) are constructed with so
    /// every shard charges transfers identically.
    pub fn cost_model(&self) -> crate::stats::CostModel {
        self.disk.lock().unwrap().cost_model()
    }

    /// Pool hit/miss counters plus the zone-map pruning counters.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            pages_skipped: self.skipped.load(Ordering::Relaxed),
            records_filtered: self.filtered.load(Ordering::Relaxed),
            pages_packed: self.packed_pages.load(Ordering::Relaxed),
            packed_pre_bytes: self.packed_pre.load(Ordering::Relaxed),
            packed_post_bytes: self.packed_post.load(Ordering::Relaxed),
            packed_decodes: self.packed_decodes.load(Ordering::Relaxed),
        }
    }

    /// Credits one heap page sealed in the packed layout: `pre` bytes of
    /// raw-equivalent records compressed into `post` bytes on the page.
    #[inline]
    pub(crate) fn note_page_packed(&self, pre: u64, post: u64) {
        self.packed_pages.fetch_add(1, Ordering::Relaxed);
        self.packed_pre.fetch_add(pre, Ordering::Relaxed);
        self.packed_post.fetch_add(post, Ordering::Relaxed);
    }

    /// Credits one packed-page decode pass by a scan.
    #[inline]
    pub(crate) fn note_packed_decode(&self) {
        self.packed_decodes.fetch_add(1, Ordering::Relaxed);
    }

    /// Credits `n` pages skipped by a filtered scan. Skipped pages are
    /// never fetched, so they cost zero I/O and zero pool requests; this
    /// counter is the only trace they leave.
    #[inline]
    pub(crate) fn note_pages_skipped(&self, n: u64) {
        self.skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Credits `n` records dropped by a record-level scan filter.
    #[inline]
    pub(crate) fn note_records_filtered(&self, n: u64) {
        self.filtered.fetch_add(n, Ordering::Relaxed);
    }

    /// Registers the zone map of a freshly written heap file. Called by
    /// [`crate::heap::HeapWriter::finish`]; replaces any previous map for
    /// the id (file ids are never reused while registered).
    pub fn register_zones(&self, file: FileId, zones: FileZones) {
        self.zones.lock().unwrap().insert(file, Arc::new(zones));
    }

    /// The zone map registered for `file`, if any. Cheap to clone (an
    /// `Arc`), safe to hold across scans on any thread.
    pub fn file_zones(&self, file: FileId) -> Option<Arc<FileZones>> {
        self.zones.lock().unwrap().get(&file).cloned()
    }

    /// Disk transfer counters (the headline experiment metric). Lock-free:
    /// safe to call while workers are running.
    pub fn io_stats(&self) -> IoStats {
        self.io.snapshot()
    }

    /// Pages loaded speculatively by read-ahead so far (whether or not they
    /// were subsequently requested). Separate from [`PoolStats`] — see the
    /// module docs.
    pub fn prefetched(&self) -> u64 {
        self.prefetched.load(Ordering::Relaxed)
    }

    /// Both counter families in one call, for span instrumentation that
    /// diffs before/after a phase. Lock-free like its two halves.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            io: self.io_stats(),
            pool: self.pool_stats(),
        }
    }

    /// Creates a new file on the underlying disk.
    pub fn create_file(&self) -> FileId {
        self.disk.lock().unwrap().create_file()
    }

    /// Number of pages in `file`.
    pub fn num_pages(&self, file: FileId) -> u32 {
        self.disk.lock().unwrap().num_pages(file)
    }

    /// Drops a file: resident frames are discarded *without* write-back
    /// (their contents are dead), then the disk space is released. The
    /// caller must own the file — no other thread may be using its pages.
    ///
    /// # Panics
    /// Panics if any page of the file is still pinned.
    pub fn delete_file(&self, file: FileId) {
        self.zones.lock().unwrap().remove(&file);
        for shard in &self.shards {
            let mut table = shard.lock().unwrap();
            table.retain(|pid, &mut f| {
                if pid.file != file {
                    return true;
                }
                let mut m = self.meta[f].lock().unwrap();
                // A claimed frame is mid-eviction by another thread; it no
                // longer belongs to this file (the evictor's write-back is
                // dropped by the deleted-file guard in `load_frame`).
                if !m.claimed {
                    assert_eq!(m.pin, 0, "deleting file with pinned page {pid}");
                    *m = FrameMeta::EMPTY;
                }
                false
            });
        }
        self.disk.lock().unwrap().delete_file(file);
    }

    /// Fetches an existing page for reading.
    pub fn read_page(&self, pid: PageId) -> Result<PageRef<'_>, PoolError> {
        let (frame, _missed) = self.fetch(pid, false, false)?;
        self.data[frame].latch.lock_shared();
        Ok(PageRef { pool: self, frame })
    }

    /// Fetches an existing page for reading, declaring the surrounding
    /// access pattern. Behaves exactly like [`BufferPool::read_page`] for
    /// the requested page; on a miss under
    /// [`AccessPattern::Sequential`]`{ readahead > 1 }` it additionally
    /// prefetches up to `readahead - 1` following pages with one vectored
    /// read (best-effort; see the module docs).
    pub fn read_page_with(&self, pid: PageId, opts: ScanOptions) -> Result<PageRef<'_>, PoolError> {
        let (frame, missed) = self.fetch(pid, false, false)?;
        self.data[frame].latch.lock_shared();
        let guard = PageRef { pool: self, frame };
        if missed {
            if let AccessPattern::Sequential { readahead } = opts.pattern {
                if readahead > 1 {
                    // The guard pins `pid`, so the prefetch sweep cannot
                    // evict the page it is reading ahead of.
                    self.prefetch(pid, readahead - 1);
                }
            }
        }
        Ok(guard)
    }

    /// Fetches an existing page for modification; the frame is marked dirty.
    pub fn write_page(&self, pid: PageId) -> Result<PageMut<'_>, PoolError> {
        let (frame, _missed) = self.fetch(pid, true, false)?;
        self.data[frame].latch.lock_exclusive();
        Ok(PageMut { pool: self, frame })
    }

    /// Appends a full page image to `file`, writing through to disk
    /// without occupying a frame.
    ///
    /// Bulk writers (heap writers, sort runs, index bulk loads) use this:
    /// their output is written exactly once and read later, so caching it
    /// would only pollute the pool — and deferring the write until clock
    /// eviction would turn a sequential output stream into random
    /// write-back, which is exactly the pathology real engines avoid by
    /// bypassing the buffer pool for bulk output.
    pub fn append_page_through(&self, file: FileId, buf: &PageBuf) -> Result<u32, PoolError> {
        self.append_pages_through(file, &[buf])
    }

    /// Appends several full page images to `file` with one vectored
    /// write-through — the batched [`BufferPool::append_page_through`]: one
    /// head movement for the whole batch. Returns the page number of the
    /// first appended page. On a device fault the transferred prefix is on
    /// disk (and charged); the failing and later pages hold zeros (or a
    /// torn image) in already-allocated slots — callers treat the batch as
    /// failed and unwind, exactly as for the single-page variant.
    pub fn append_pages_through(&self, file: FileId, bufs: &[&PageBuf]) -> Result<u32, PoolError> {
        assert!(!bufs.is_empty(), "empty append batch");
        let mut disk = self.disk.lock().unwrap();
        let start = disk.allocate_page(file)?;
        for _ in 1..bufs.len() {
            disk.allocate_page(file)?;
        }
        disk.write_pages(file, start, bufs)
            .map_err(|e| PoolError::Io(e.error))?;
        Ok(start)
    }

    /// Allocates a fresh zeroed page at the end of `file` without fetching
    /// it into a frame. Used by the logged write path: the page's first
    /// contents arrive through [`BufferPool::write_page`] under a WAL
    /// record, and recovery re-allocates it the same way when replaying.
    pub fn allocate_page(&self, file: FileId) -> Result<u32, PoolError> {
        Ok(self.disk.lock().unwrap().allocate_page(file)?)
    }

    /// Writes a full page image straight to disk, bypassing the frames.
    /// For pages the pool never caches — the write-ahead log's own file,
    /// whose pages would otherwise need a gate to escape their own gate.
    /// Writing a *cached* page this way would desynchronize the resident
    /// frame; callers own their file exclusively.
    pub fn write_page_through(&self, pid: PageId, buf: &PageBuf) -> Result<(), PoolError> {
        Ok(self.disk.lock().unwrap().write_page(pid, buf)?)
    }

    /// Reads a full page image straight from disk, bypassing (and not
    /// populating) the frames. The read-side counterpart of
    /// [`BufferPool::write_page_through`], used by WAL recovery so log
    /// pages never occupy frames the replayed data pages need.
    pub fn read_page_through(&self, pid: PageId, buf: &mut PageBuf) -> Result<(), PoolError> {
        Ok(self.disk.lock().unwrap().read_page(pid, buf)?)
    }

    /// Allocates a fresh page in `file` and returns it pinned for writing.
    /// No read is charged: the page starts zeroed.
    pub fn new_page(&self, file: FileId) -> Result<(u32, PageMut<'_>), PoolError> {
        let page = self.disk.lock().unwrap().allocate_page(file)?;
        let pid = PageId::new(file, page);
        let (frame, _missed) = self.fetch(pid, true, true)?;
        self.data[frame].latch.lock_exclusive();
        Ok((page, PageMut { pool: self, frame }))
    }

    /// Flushes and then discards every unpinned frame — a cold-cache reset
    /// used between experiment runs so each algorithm starts from disk.
    /// On an I/O error the pool is untouched (all frames stay resident;
    /// flushed ones are clean, the failing and unflushed ones still dirty).
    ///
    /// # Panics
    /// Panics if any frame is still pinned (experiments must not hold
    /// guards across runs).
    pub fn evict_all(&self) -> Result<(), PoolError> {
        self.flush_all()?;
        for m in &self.meta {
            let mut m = m.lock().unwrap();
            assert_eq!(m.pin, 0, "evict_all with a pinned frame");
            assert!(!m.claimed, "evict_all while a fetch is in flight");
            *m = FrameMeta::EMPTY;
        }
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
        *self.hand.lock().unwrap() = 0;
        Ok(())
    }

    /// Writes back every dirty frame (leaving pages resident and clean),
    /// coalescing page-contiguous runs into vectored writes — one head
    /// movement per run instead of per page. Stops at the first I/O error;
    /// already-flushed frames are clean, the failing frame and the rest
    /// stay dirty, so a recovered caller can simply flush again.
    pub fn flush_all(&self) -> Result<(), PoolError> {
        // Collect dirty residents, then flush in page order for sequential
        // write-back, as a real pool would.
        let mut dirty: Vec<(PageId, usize)> = Vec::new();
        for (i, m) in self.meta.iter().enumerate() {
            let m = m.lock().unwrap();
            if let (true, false, Some(pid)) = (m.dirty, m.claimed, m.pid) {
                dirty.push((pid, i));
            }
        }
        dirty.sort_unstable();
        let mut k = 0;
        while k < dirty.len() {
            let mut j = k + 1;
            while j < dirty.len()
                && j - k < FLUSH_RUN_MAX
                && dirty[j].0.file == dirty[k].0.file
                && dirty[j].0.page == dirty[j - 1].0.page + 1
            {
                j += 1;
            }
            self.flush_run(&dirty[k..j])?;
            k = j;
        }
        Ok(())
    }

    /// Flushes one candidate run of page-contiguous dirty frames. Every
    /// frame is latched shared and meta-locked in page order (concurrent
    /// flushers take the same global order, so they cannot deadlock), then
    /// re-verified: frames evicted, cleaned or re-claimed since collection
    /// split the run into shorter verified sub-runs, each still contiguous
    /// and written with one vectored transfer.
    fn flush_run(&self, run: &[(PageId, usize)]) -> Result<(), PoolError> {
        for &(_, i) in run {
            // Waits out any in-flight writer guard on the frame.
            self.data[i].latch.lock_shared();
        }
        let mut metas: Vec<std::sync::MutexGuard<'_, FrameMeta>> = run
            .iter()
            .map(|&(_, i)| self.meta[i].lock().unwrap())
            .collect();
        let ok: Vec<bool> = run
            .iter()
            .zip(&metas)
            .map(|(&(pid, _), m)| m.dirty && !m.claimed && m.pid == Some(pid))
            .collect();
        // WAL-before-page for the whole run: make the log durable through
        // the highest stamped LSN before any frame reaches disk. Holding
        // the metas here is safe — the gate only touches WAL state and the
        // disk, never frame metadata.
        let max_lsn = metas
            .iter()
            .zip(&ok)
            .filter(|&(_, ok)| *ok)
            .map(|(m, _)| m.lsn)
            .max()
            .unwrap_or(0);
        let mut result = self.gate_lsn(max_lsn);
        let mut k = 0;
        while result.is_ok() && k < run.len() {
            if !ok[k] {
                k += 1;
                continue;
            }
            let mut j = k + 1;
            while j < run.len() && ok[j] {
                j += 1;
            }
            // SAFETY: shared latches held on the whole run; no exclusive
            // access exists.
            let bufs: Vec<&PageBuf> = (k..j)
                .map(|x| unsafe { &**self.data[run[x].1].buf.get() })
                .collect();
            let res = self
                .disk
                .lock()
                .unwrap()
                .write_pages(run[k].0.file, run[k].0.page, &bufs);
            match res {
                Ok(()) => (k..j).for_each(|x| {
                    metas[x].dirty = false;
                    metas[x].lsn = 0;
                }),
                Err(BatchError { done, error }) => {
                    (k..k + done).for_each(|x| {
                        metas[x].dirty = false;
                        metas[x].lsn = 0;
                    });
                    result = Err(error.into());
                }
            }
            if result.is_err() {
                break;
            }
            k = j;
        }
        drop(metas);
        for &(_, i) in run {
            self.data[i].latch.unlock_shared();
        }
        result
    }

    /// Number of currently pinned frames. Used by tests to assert that an
    /// error unwind released every pin; a steady-state pool returns 0.
    pub fn pinned_frames(&self) -> usize {
        self.meta
            .iter()
            .filter(|m| m.lock().unwrap().pin > 0)
            .count()
    }

    /// Files currently live on the underlying disk (created, not deleted).
    pub fn live_files(&self) -> Vec<FileId> {
        self.disk.lock().unwrap().live_files()
    }

    /// Core fetch: returns the (pinned) frame index holding `pid` and
    /// whether the request missed (read from disk / claimed a fresh frame).
    /// `fresh` skips the disk read for newly allocated pages.
    fn fetch(&self, pid: PageId, for_write: bool, fresh: bool) -> Result<(usize, bool), PoolError> {
        loop {
            // Hit path: resident and not mid-eviction.
            {
                let table = self.shard_of(pid).lock().unwrap();
                if let Some(&f) = table.get(&pid) {
                    let mut m = self.meta[f].lock().unwrap();
                    if m.claimed {
                        // Another thread is still loading this page; let it
                        // finish and retry.
                        drop(m);
                        drop(table);
                        std::thread::yield_now();
                        continue;
                    }
                    debug_assert_eq!(m.pid, Some(pid));
                    m.pin += 1;
                    m.referenced = true;
                    m.dirty |= for_write;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((f, false));
                }
            }

            // Miss path: claim a victim frame, evict its old resident, then
            // race for the table slot.
            let (victim, old) = self.claim_victim()?;
            if let Some((old_pid, old_dirty, old_lsn)) = old {
                // Write back BEFORE removing the table mapping: as long as
                // the entry exists, a concurrent miss on the old page parks
                // on the claimed frame instead of reading the (still stale)
                // disk copy. Removing first would let that miss read data
                // from before this write-back — a lost update.
                if old_dirty {
                    // WAL-before-page: the log must be durable through the
                    // victim's LSN before its image may reach disk. On a
                    // log-flush fault, release the claim exactly like a
                    // failed write-back: nothing was lost, retry later.
                    if let Err(e) = self.gate_lsn(old_lsn) {
                        self.meta[victim].lock().unwrap().claimed = false;
                        return Err(e);
                    }
                    // SAFETY: the frame is claimed with pin == 0 — no guard
                    // exists and none can be created.
                    let buf = unsafe { &**self.data[victim].buf.get() };
                    let mut disk = self.disk.lock().unwrap();
                    // Skip write-back if the file was deleted concurrently
                    // (its contents are dead anyway).
                    if disk.num_pages(old_pid.file) > old_pid.page {
                        if let Err(e) = disk.write_page(old_pid, buf) {
                            // Release the claim: the old page stays resident
                            // and dirty (its table entry was never removed),
                            // so nothing is lost and a retry can evict it
                            // again once the device recovers.
                            drop(disk);
                            self.meta[victim].lock().unwrap().claimed = false;
                            return Err(e.into());
                        }
                    }
                }
                let mut table = self.shard_of(old_pid).lock().unwrap();
                if table.get(&old_pid) == Some(&victim) {
                    table.remove(&old_pid);
                }
            }

            {
                let mut table = self.shard_of(pid).lock().unwrap();
                if table.contains_key(&pid) {
                    // Lost the load race: another thread published this page
                    // while we were evicting. Return the claimed frame and
                    // retry; the retry pins the winner's frame and counts a
                    // single hit — this request is never double-counted.
                    drop(table);
                    *self.meta[victim].lock().unwrap() = FrameMeta::EMPTY;
                    continue;
                }
                table.insert(pid, victim);
            }

            // Load while claimed (invisible to hits, skipped by the clock).
            // SAFETY: claimed + pin == 0, sole access as above.
            let buf = unsafe { &mut **self.data[victim].buf.get() };
            if fresh {
                buf.fill(0);
            } else if let Err(e) = self.disk.lock().unwrap().read_page(pid, buf) {
                // Undo the publication: remove the mapping (threads parked
                // on the claimed frame will fall through to their own disk
                // read and surface the same fault) and free the frame.
                let mut table = self.shard_of(pid).lock().unwrap();
                if table.get(&pid) == Some(&victim) {
                    table.remove(&pid);
                }
                drop(table);
                *self.meta[victim].lock().unwrap() = FrameMeta::EMPTY;
                return Err(e.into());
            }

            *self.meta[victim].lock().unwrap() = FrameMeta {
                pid: Some(pid),
                pin: 1,
                dirty: for_write,
                referenced: true,
                claimed: false,
                lsn: 0,
            };
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((victim, true));
        }
    }

    /// Best-effort read-ahead: loads up to `count` pages of `after.file`
    /// following `after` into unpinned frames with one vectored read. Never
    /// blocks, never evicts pinned pages, stops at the first page already
    /// resident (the stream is cached ahead) and swallows faults — a failed
    /// speculative read leaves its pages to the on-demand path.
    fn prefetch(&self, after: PageId, count: usize) {
        let file = after.file;
        let Some(start) = after.page.checked_add(1) else {
            return;
        };
        let avail = self
            .disk
            .lock()
            .unwrap()
            .num_pages(file)
            .saturating_sub(start) as usize;
        let want = count.min(avail);

        // Stage: one claimed victim frame per page. `try_claim_victim`
        // never waits, so a loaded pool simply prefetches less.
        let mut staged: Vec<ClaimedVictim> = Vec::with_capacity(want);
        for i in 0..want {
            let pid = PageId::new(file, start + i as u32);
            if self.shard_of(pid).lock().unwrap().contains_key(&pid) {
                break;
            }
            match self.try_claim_victim() {
                Some(claim) => staged.push(claim),
                None => break,
            }
        }
        if staged.is_empty() {
            return;
        }

        // Write back the victims' dirty residents, coalescing contiguous
        // runs into vectored writes. A write fault aborts the whole
        // prefetch: every claim is released, leaving each old page exactly
        // as the fault left it (written-back frames clean, the rest dirty),
        // and the table mappings — never removed yet — still valid.
        let mut dirty: Vec<(PageId, usize)> = staged
            .iter()
            .enumerate()
            .filter_map(|(i, &(_, old))| old.filter(|&(_, d, _)| d).map(|(p, _, _)| (p, i)))
            .collect();
        dirty.sort_unstable();
        let mut written = vec![false; staged.len()];
        // WAL-before-page for the staged dirty victims: one gate call for
        // the batch's highest LSN. A log-flush fault aborts the prefetch
        // (claims released, nothing written) — read-ahead is best-effort.
        let max_lsn = staged
            .iter()
            .filter_map(|&(_, old)| old.filter(|&(_, d, _)| d).map(|(_, _, l)| l))
            .max()
            .unwrap_or(0);
        let mut failed = !dirty.is_empty() && self.gate_lsn(max_lsn).is_err();
        let mut k = 0;
        while k < dirty.len() && !failed {
            let mut j = k + 1;
            while j < dirty.len()
                && dirty[j].0.file == dirty[k].0.file
                && dirty[j].0.page == dirty[j - 1].0.page + 1
            {
                j += 1;
            }
            let run = &dirty[k..j];
            // SAFETY: each frame is claimed with pin == 0 — sole access.
            let bufs: Vec<&PageBuf> = run
                .iter()
                .map(|&(_, i)| unsafe { &**self.data[staged[i].0].buf.get() })
                .collect();
            let mut disk = self.disk.lock().unwrap();
            // Victims of a concurrently deleted file (num_pages dropped to
            // zero) need no write-back; their contents are dead.
            if disk.num_pages(run[0].0.file) > 0 {
                match disk.write_pages(run[0].0.file, run[0].0.page, &bufs) {
                    Ok(()) => run.iter().for_each(|&(_, i)| written[i] = true),
                    Err(BatchError { done, .. }) => {
                        run[..done].iter().for_each(|&(_, i)| written[i] = true);
                        failed = true;
                    }
                }
            }
            drop(disk);
            k = j;
        }
        if failed {
            for (i, &(frame, _)) in staged.iter().enumerate() {
                let mut m = self.meta[frame].lock().unwrap();
                if written[i] {
                    m.dirty = false;
                }
                m.claimed = false;
            }
            return;
        }

        // Remove the old residents' table mappings (write-back is done, so
        // a miss on an old page may now read the fresh disk copy).
        for &(frame, old) in &staged {
            if let Some((old_pid, _, _)) = old {
                let mut table = self.shard_of(old_pid).lock().unwrap();
                if table.get(&old_pid) == Some(&frame) {
                    table.remove(&old_pid);
                }
            }
        }

        // Publish the new mappings, truncating at the first page another
        // thread published while we were staging (frames past it return to
        // the free pool).
        let mut n = staged.len();
        for (i, &(frame, _)) in staged.iter().enumerate() {
            let pid = PageId::new(file, start + i as u32);
            let mut table = self.shard_of(pid).lock().unwrap();
            if table.contains_key(&pid) {
                n = i;
                break;
            }
            table.insert(pid, frame);
        }
        for &(frame, _) in &staged[n..] {
            *self.meta[frame].lock().unwrap() = FrameMeta::EMPTY;
        }
        staged.truncate(n);
        if staged.is_empty() {
            return;
        }

        // One vectored read for the whole batch. On a fault, publish the
        // transferred prefix and free the rest — the fault itself is
        // swallowed (the on-demand path will surface it if it persists).
        let res = {
            // SAFETY: claimed frames, sole access; frame indices distinct.
            let mut bufs: Vec<&mut PageBuf> = staged
                .iter()
                .map(|&(frame, _)| unsafe { &mut **self.data[frame].buf.get() })
                .collect();
            self.disk.lock().unwrap().read_pages(file, start, &mut bufs)
        };
        let done = match res {
            Ok(()) => staged.len(),
            Err(BatchError { done, .. }) => done,
        };
        for (i, &(frame, _)) in staged.iter().enumerate() {
            if i < done {
                *self.meta[frame].lock().unwrap() = FrameMeta {
                    pid: Some(PageId::new(file, start + i as u32)),
                    pin: 0,
                    dirty: false,
                    referenced: true,
                    claimed: false,
                    lsn: 0,
                };
            } else {
                let pid = PageId::new(file, start + i as u32);
                let mut table = self.shard_of(pid).lock().unwrap();
                if table.get(&pid) == Some(&frame) {
                    table.remove(&pid);
                }
                drop(table);
                *self.meta[frame].lock().unwrap() = FrameMeta::EMPTY;
            }
        }
        self.prefetched.fetch_add(done as u64, Ordering::Relaxed);
    }

    /// Clock sweep: claim an unpinned frame, giving referenced frames a
    /// second chance. Returns the frame index and, if it held a page, that
    /// page and its dirty bit. The hand mutex is held for the whole sweep,
    /// so selection is serialized (and deterministic when single-threaded).
    #[allow(clippy::type_complexity)]
    fn claim_victim(&self) -> Result<(usize, Option<(PageId, bool, u64)>), PoolError> {
        let n = self.meta.len();
        let mut spins = 0u32;
        loop {
            let mut hand = self.hand.lock().unwrap();
            let mut saw_claimed = false;
            for _ in 0..2 * n {
                let i = *hand;
                *hand = (*hand + 1) % n;
                let mut m = self.meta[i].lock().unwrap();
                if m.claimed {
                    saw_claimed = true;
                    continue;
                }
                if m.pin > 0 {
                    continue;
                }
                if m.referenced {
                    m.referenced = false;
                    continue;
                }
                m.claimed = true;
                return Ok((i, m.pid.map(|p| (p, m.dirty, m.lsn))));
            }
            drop(hand);
            // Frames claimed by in-flight fetches on other threads are
            // transient; give them a bounded chance to resolve before
            // declaring the pool exhausted.
            if !saw_claimed || spins >= 1_000 {
                return Err(PoolError::NoFreeFrames { capacity: n });
            }
            spins += 1;
            std::thread::yield_now();
        }
    }

    /// Non-blocking clock sweep for the prefetcher: one pass of up to `2n`
    /// steps with the usual second-chance semantics, but claimed frames are
    /// skipped without waiting and exhaustion returns `None` instead of an
    /// error. Prefetch would rather skip read-ahead than stall — and it may
    /// already hold claims itself, so waiting on claimed frames here could
    /// self-deadlock.
    fn try_claim_victim(&self) -> Option<ClaimedVictim> {
        let n = self.meta.len();
        let mut hand = self.hand.lock().unwrap();
        for _ in 0..2 * n {
            let i = *hand;
            *hand = (*hand + 1) % n;
            let mut m = self.meta[i].lock().unwrap();
            if m.claimed || m.pin > 0 {
                continue;
            }
            if m.referenced {
                m.referenced = false;
                continue;
            }
            m.claimed = true;
            return Some((i, m.pid.map(|p| (p, m.dirty, m.lsn))));
        }
        None
    }

    fn unpin(&self, frame: usize) {
        let mut m = self.meta[frame].lock().unwrap();
        debug_assert!(m.pin > 0, "unpin of unpinned frame");
        m.pin -= 1;
    }
}

/// A pinned, read-only page. Unpins on drop. `Send`: workers may hand
/// pinned pages across thread boundaries.
pub struct PageRef<'a> {
    pool: &'a BufferPool,
    frame: usize,
}

// SAFETY: the guard only touches the pool through `&BufferPool` (which is
// `Sync`) and owns a shared data latch + one pin, both released on drop
// from whichever thread that happens on.
unsafe impl Send for PageRef<'_> {}

impl Deref for PageRef<'_> {
    type Target = PageBuf;

    #[inline]
    fn deref(&self) -> &PageBuf {
        // SAFETY: shared latch held for the guard's lifetime.
        unsafe { &*self.pool.data[self.frame].buf.get() }
    }
}

impl Drop for PageRef<'_> {
    fn drop(&mut self) {
        self.pool.data[self.frame].latch.unlock_shared();
        self.pool.unpin(self.frame);
    }
}

/// A pinned, writable page (its frame is marked dirty). Unpins on drop;
/// the actual disk write happens on eviction or [`BufferPool::flush_all`].
pub struct PageMut<'a> {
    pool: &'a BufferPool,
    frame: usize,
}

// SAFETY: as for `PageRef`, with an exclusive latch.
unsafe impl Send for PageMut<'_> {}

impl Deref for PageMut<'_> {
    type Target = PageBuf;

    #[inline]
    fn deref(&self) -> &PageBuf {
        // SAFETY: exclusive latch held for the guard's lifetime.
        unsafe { &*self.pool.data[self.frame].buf.get() }
    }
}

impl DerefMut for PageMut<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut PageBuf {
        // SAFETY: exclusive latch held for the guard's lifetime.
        unsafe { &mut *self.pool.data[self.frame].buf.get() }
    }
}

impl PageMut<'_> {
    /// Stamps the frame with the WAL LSN whose log record covers the bytes
    /// this guard wrote. The pool will not write the frame back to disk
    /// before the registered [`LsnGate`] confirms the log is durable
    /// through the highest stamped LSN. Monotonic: a lower stamp never
    /// overwrites a higher one.
    pub fn stamp_lsn(&self, lsn: u64) {
        let mut m = self.pool.meta[self.frame].lock().unwrap();
        m.lsn = m.lsn.max(lsn);
    }
}

impl Drop for PageMut<'_> {
    fn drop(&mut self) {
        self.pool.data[self.frame].latch.unlock_exclusive();
        self.pool.unpin(self.frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Disk::in_memory_free(), frames)
    }

    #[test]
    fn pool_and_guards_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<BufferPool>();
        assert_send::<PageRef<'static>>();
        assert_send::<PageMut<'static>>();
    }

    #[test]
    fn write_then_read_through_pool() {
        let p = pool(4);
        let f = p.create_file();
        let (n0, mut g) = p.new_page(f).unwrap();
        assert_eq!(n0, 0);
        g[0] = 42;
        g[100] = 7;
        drop(g);
        let r = p.read_page(PageId::new(f, 0)).unwrap();
        assert_eq!(r[0], 42);
        assert_eq!(r[100], 7);
        // Still resident: zero disk reads so far, zero writes (not evicted).
        let io = p.io_stats();
        assert_eq!(io.reads(), 0);
        assert_eq!(io.writes(), 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2);
        let f = p.create_file();
        for i in 0..4u8 {
            let (_, mut g) = p.new_page(f).unwrap();
            g[0] = i;
        }
        // Pages 0 and 1 were evicted (written); 2 and 3 are resident dirty.
        assert_eq!(p.io_stats().writes(), 2);
        let r = p.read_page(PageId::new(f, 0)).unwrap();
        assert_eq!(r[0], 0);
        drop(r);
        let r = p.read_page(PageId::new(f, 3)).unwrap();
        assert_eq!(r[0], 3);
    }

    #[test]
    fn flush_all_persists_and_keeps_resident() {
        let p = pool(4);
        let f = p.create_file();
        for i in 0..3u8 {
            let (_, mut g) = p.new_page(f).unwrap();
            g[0] = i + 10;
        }
        p.flush_all().unwrap();
        assert_eq!(p.io_stats().writes(), 3);
        // Re-read hits the pool, no disk read.
        let before = p.io_stats().reads();
        let r = p.read_page(PageId::new(f, 1)).unwrap();
        assert_eq!(r[0], 11);
        assert_eq!(p.io_stats().reads(), before);
        // Clean frames are not rewritten on a second flush.
        drop(r);
        p.flush_all().unwrap();
        assert_eq!(p.io_stats().writes(), 3);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let p = pool(2);
        let f = p.create_file();
        let (_, g0) = p.new_page(f).unwrap(); // pin page 0
        for _ in 0..5 {
            let (_, _g) = p.new_page(f).unwrap(); // cycles through frame 2
        }
        // Page 0 must still be resident and intact.
        drop(g0);
        let r = p.read_page(PageId::new(f, 0)).unwrap();
        assert_eq!(r[0], 0);
        assert_eq!(p.pool_stats().hits, 1);
    }

    #[test]
    fn no_free_frames_is_reported() {
        let p = pool(2);
        let f = p.create_file();
        let (_, _g0) = p.new_page(f).unwrap();
        let (_, _g1) = p.new_page(f).unwrap();
        let err = p.new_page(f).map(|_| ()).unwrap_err();
        assert_eq!(err, PoolError::NoFreeFrames { capacity: 2 });
    }

    #[test]
    fn hit_and_miss_accounting() {
        let p = pool(2);
        let f = p.create_file();
        let (_, g) = p.new_page(f).unwrap();
        drop(g);
        drop(p.read_page(PageId::new(f, 0)).unwrap()); // hit
        drop(p.read_page(PageId::new(f, 0)).unwrap()); // hit
        let s = p.pool_stats();
        assert_eq!(s.misses, 1); // the new_page claim
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn delete_file_discards_dirty_frames() {
        let p = pool(4);
        let f = p.create_file();
        let (_, mut g) = p.new_page(f).unwrap();
        g[0] = 9;
        drop(g);
        p.delete_file(f);
        // Dirty frame was discarded: no write-back happened.
        assert_eq!(p.io_stats().writes(), 0);
        assert_eq!(p.num_pages(f), 0);
        // The frame is reusable.
        let f2 = p.create_file();
        let (_, _g) = p.new_page(f2).unwrap();
    }

    #[test]
    fn clock_gives_second_chance() {
        let p = pool(3);
        let f = p.create_file();
        for _ in 0..3 {
            let (_, _g) = p.new_page(f).unwrap();
        }
        // Fault in page 3: the sweep clears every reference bit and evicts
        // page 0, leaving pages 1 and 2 resident but unreferenced.
        let (_, g) = p.new_page(f).unwrap();
        drop(g);
        // Re-touch page 2: its reference bit protects it from the next sweep.
        drop(p.read_page(PageId::new(f, 2)).unwrap());
        // Fault in page 4: the victim must be the unreferenced page 1,
        // not the just-touched page 2.
        let (_, g) = p.new_page(f).unwrap();
        drop(g);
        let before = p.io_stats().reads();
        drop(p.read_page(PageId::new(f, 2)).unwrap());
        assert_eq!(p.io_stats().reads(), before, "page 2 was evicted");
        drop(p.read_page(PageId::new(f, 1)).unwrap());
        assert_eq!(p.io_stats().reads(), before + 1, "page 1 should be gone");
    }

    #[test]
    fn many_pages_roundtrip_under_small_pool() {
        let p = pool(3);
        let f = p.create_file();
        for i in 0..50u32 {
            let (_, mut g) = p.new_page(f).unwrap();
            g[..4].copy_from_slice(&i.to_le_bytes());
        }
        for i in (0..50u32).rev() {
            let r = p.read_page(PageId::new(f, i)).unwrap();
            assert_eq!(u32::from_le_bytes(r[..4].try_into().unwrap()), i);
        }
    }

    #[test]
    fn concurrent_reads_of_one_page_share_the_frame() {
        let p = pool(4);
        let f = p.create_file();
        let (_, mut g) = p.new_page(f).unwrap();
        g[0] = 77;
        drop(g);
        let r1 = p.read_page(PageId::new(f, 0)).unwrap();
        let r2 = p.read_page(PageId::new(f, 0)).unwrap();
        assert_eq!(r1[0], 77);
        assert_eq!(r2[0], 77);
        assert_eq!(p.pool_stats().hits, 2);
    }

    #[test]
    fn read_ahead_prefetches_following_pages() {
        let p = pool(8);
        let f = p.create_file();
        for i in 0..6u8 {
            let (_, mut g) = p.new_page(f).unwrap();
            g[0] = i;
        }
        p.evict_all().unwrap();
        let base = p.io_stats();
        let opts = ScanOptions::sequential(4);
        let r = p.read_page_with(PageId::new(f, 0), opts).unwrap();
        assert_eq!(r[0], 0);
        drop(r);
        // One demand read plus three prefetched pages, fetched as one
        // sequential run behind the demand page.
        let d = p.io_stats().since(&base);
        assert_eq!(d.reads(), 4);
        assert_eq!(d.seq_reads, 3);
        assert_eq!(p.prefetched(), 3);
        // Pages 1..4 are resident: pure pool hits, no further disk reads.
        let before = p.pool_stats();
        for i in 1..4u32 {
            let r = p.read_page_with(PageId::new(f, i), opts).unwrap();
            assert_eq!(r[0], i as u8);
        }
        let ps = p.pool_stats().since(&before);
        assert_eq!((ps.hits, ps.misses), (3, 0));
        assert_eq!(p.io_stats().since(&base).reads(), 4);
    }

    #[test]
    fn read_ahead_clips_to_file_end() {
        let p = pool(8);
        let f = p.create_file();
        for _ in 0..2 {
            let (_, _g) = p.new_page(f).unwrap();
        }
        p.evict_all().unwrap();
        let r = p
            .read_page_with(PageId::new(f, 0), ScanOptions::sequential(8))
            .unwrap();
        drop(r);
        // Only one page exists past page 0; no read beyond the file end.
        assert_eq!(p.prefetched(), 1);
        assert_eq!(p.io_stats().reads(), 2);
    }

    #[test]
    fn read_ahead_never_evicts_pinned_pages() {
        let p = pool(2);
        let f = p.create_file();
        for _ in 0..4 {
            let (_, _g) = p.new_page(f).unwrap();
        }
        p.evict_all().unwrap();
        // Page 0 stays pinned; read-ahead wants 3 more pages but only one
        // frame is free — it takes what it can get, without erroring.
        let g0 = p
            .read_page_with(PageId::new(f, 0), ScanOptions::sequential(4))
            .unwrap();
        assert_eq!(p.prefetched(), 1);
        let r = p.read_page(PageId::new(f, 1)).unwrap(); // prefetched: a hit
        assert_eq!(p.pool_stats().since(&PoolStats::default()).hits, 1);
        drop(r);
        drop(g0);
    }

    #[test]
    fn prefetch_writes_back_dirty_victims() {
        let p = pool(4);
        let f = p.create_file();
        for i in 0..8u8 {
            let (_, mut g) = p.new_page(f).unwrap();
            g[0] = i;
        }
        // Frames hold dirty pages 4..8. The demand miss evicts one; the
        // prefetch staging evicts the other three (a contiguous dirty run,
        // written back with one vectored transfer). Nothing may be lost.
        let r = p
            .read_page_with(PageId::new(f, 0), ScanOptions::sequential(4))
            .unwrap();
        assert_eq!(r[0], 0);
        drop(r);
        assert_eq!(p.prefetched(), 3);
        for i in 0..8u32 {
            let r = p.read_page(PageId::new(f, i)).unwrap();
            assert_eq!(r[0], i as u8);
        }
    }

    #[test]
    fn flush_coalesces_contiguous_runs() {
        let p = pool(8);
        let f = p.create_file();
        for _ in 0..4 {
            let (_, _g) = p.new_page(f).unwrap();
        }
        let base = p.io_stats();
        p.flush_all().unwrap();
        // Four contiguous dirty pages: one vectored write — one seek, three
        // sequential transfers.
        let d = p.io_stats().since(&base);
        assert_eq!(d.writes(), 4);
        assert_eq!((d.rand_writes, d.seq_writes), (1, 3));
    }

    #[test]
    fn batched_append_through_charges_one_seek() {
        let p = pool(4);
        let f = p.create_file();
        let a = Box::new([1u8; PAGE_SIZE]);
        let b = Box::new([2u8; PAGE_SIZE]);
        let c = Box::new([3u8; PAGE_SIZE]);
        let start = p.append_pages_through(f, &[&a, &b, &c]).unwrap();
        assert_eq!(start, 0);
        let d = p.io_stats();
        assert_eq!((d.rand_writes, d.seq_writes), (1, 2));
        let r = p.read_page(PageId::new(f, 2)).unwrap();
        assert_eq!(r[0], 3);
    }

    #[test]
    fn guards_can_cross_threads() {
        let p = pool(4);
        let f = p.create_file();
        let (_, mut g) = p.new_page(f).unwrap();
        g[0] = 5;
        std::thread::scope(|s| {
            s.spawn(move || {
                // The guard moved here; mutate and drop on this thread.
                g[1] = 6;
            });
        });
        let r = p.read_page(PageId::new(f, 0)).unwrap();
        assert_eq!((r[0], r[1]), (5, 6));
    }
}
