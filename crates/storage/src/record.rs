//! Fixed-width record encoding for heap files.
//!
//! Join inputs are tuples of PBiTree codes (plus small payloads); all of
//! them serialize to a fixed byte width, which keeps heap pages trivially
//! packed and external sort runs directly comparable to the paper's
//! page-count cost formulas.

/// The `(start, height, tag)` decomposition of a packable record — the
/// three quantities the packed page codec ([`crate::codec`]) stores. For a
/// PBiTree element these determine the record completely: the region end is
/// `start + 2^(height+1) - 2` (Lemma 3), so it is never materialized on
/// disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordParts {
    /// Sort-dominant key component (a PBiTree element's region start).
    pub start: u64,
    /// Height component; must fit 6 bits (`<= 63`).
    pub height: u32,
    /// Payload carried verbatim (an element's tag id).
    pub tag: u32,
}

/// A record with a fixed serialized size.
///
/// Implementations must write exactly [`SIZE`](FixedRecord::SIZE) bytes and
/// read back the identical value (round-trip property, checked by tests for
/// every implementation in this workspace).
pub trait FixedRecord: Copy {
    /// Serialized size in bytes. Must be `>= 1` and no larger than a page
    /// payload.
    const SIZE: usize;

    /// Whether heap writers may pack pages of this type with the
    /// delta/varint codec ([`crate::codec`]) when compression is enabled.
    /// Types opting in must implement [`to_parts`](FixedRecord::to_parts)
    /// and [`from_parts`](FixedRecord::from_parts) as exact inverses.
    const PACKABLE: bool = false;

    /// Serializes into `out`, which is exactly `SIZE` bytes.
    fn write(&self, out: &mut [u8]);

    /// Deserializes from `buf`, which is exactly `SIZE` bytes.
    fn read(buf: &[u8]) -> Self;

    /// Optional `(lo, hi)` interval this record occupies in some keyspace,
    /// folded by heap writers into per-file catalog bounds (joins use them
    /// to pick partitioning levels without an extra scan). `None` (the
    /// default) keeps no statistics.
    #[inline]
    fn bounds_hint(&self) -> Option<(u64, u64)> {
        None
    }

    /// Optional height of this record (a PBiTree element's node height),
    /// folded together with [`bounds_hint`](FixedRecord::bounds_hint) into
    /// per-page [`crate::zone::ZoneEntry`] zone maps by heap writers.
    /// Records returning `None` (the default) poison their page's zone, so
    /// filtered scans never skip a page they have no summary for.
    #[inline]
    fn height_hint(&self) -> Option<u32> {
        None
    }

    /// Checks the raw serialized bytes of one record *before* decoding.
    /// `buf` is exactly `SIZE` bytes. Returning `Err` makes
    /// [`crate::heap::HeapScan`] surface the page as
    /// [`crate::buffer::PoolError::Corrupt`] instead of decoding garbage.
    /// The default accepts any bytes — appropriate for types like the
    /// primitive integers, for which every bit pattern is a value.
    #[inline]
    fn validate(_buf: &[u8]) -> Result<(), &'static str> {
        Ok(())
    }

    /// Decomposes this record for the packed page codec. `None` (the
    /// default, and any record a packable type cannot represent as parts)
    /// makes the writer seal the current packed page and fall back to the
    /// raw layout.
    #[inline]
    fn to_parts(&self) -> Option<RecordParts> {
        None
    }

    /// Reassembles a record from codec parts, validating as
    /// [`validate`](FixedRecord::validate) would — an `Err` makes the scan
    /// surface the page as [`crate::buffer::PoolError::Corrupt`]. The
    /// default (for non-packable types) rejects everything, so a packed
    /// page appearing in a file of non-packable records is itself
    /// corruption.
    #[inline]
    fn from_parts(_p: RecordParts) -> Result<Self, &'static str> {
        Err("packed page in a file of non-packable records")
    }
}

impl FixedRecord for u64 {
    const SIZE: usize = 8;

    #[inline]
    fn write(&self, out: &mut [u8]) {
        out.copy_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf.try_into().expect("u64 record is 8 bytes"))
    }
}

impl FixedRecord for u32 {
    const SIZE: usize = 4;

    #[inline]
    fn write(&self, out: &mut [u8]) {
        out.copy_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read(buf: &[u8]) -> Self {
        u32::from_le_bytes(buf.try_into().expect("u32 record is 4 bytes"))
    }
}

impl FixedRecord for u128 {
    const SIZE: usize = 16;

    #[inline]
    fn write(&self, out: &mut [u8]) {
        out.copy_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read(buf: &[u8]) -> Self {
        u128::from_le_bytes(buf.try_into().expect("u128 record is 16 bytes"))
    }
}

impl<A: FixedRecord, B: FixedRecord> FixedRecord for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    #[inline]
    fn write(&self, out: &mut [u8]) {
        self.0.write(&mut out[..A::SIZE]);
        self.1.write(&mut out[A::SIZE..]);
    }

    #[inline]
    fn read(buf: &[u8]) -> Self {
        (A::read(&buf[..A::SIZE]), B::read(&buf[A::SIZE..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<R: FixedRecord + PartialEq + std::fmt::Debug>(r: R) {
        let mut buf = vec![0u8; R::SIZE];
        r.write(&mut buf);
        assert_eq!(R::read(&buf), r);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u128::MAX - 7);
    }

    #[test]
    fn pair_round_trips() {
        round_trip((42u64, 7u32));
        round_trip((u128::MAX, u64::MAX));
        round_trip(((1u64, 2u64), 3u32));
        assert_eq!(<((u64, u64), u32)>::SIZE, 20);
    }
}
