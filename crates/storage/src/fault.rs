//! Deterministic fault injection for the storage stack.
//!
//! [`FaultBackend`] wraps any [`DiskBackend`] and injects [`IoError`]s at
//! configurable points in the stream of page transfers. Faults fire either
//! at an exact I/O index (the n-th read or n-th write since the counters
//! were last reset — fully deterministic, used by the sweep harness to hit
//! *every* transfer of a workload) or with a seed-driven probability per
//! transfer (the [`crate::util::rng`] xoshiro stream, so a given seed
//! always faults the same transfers).
//!
//! The wrapper counts every attempt, including failed ones. That is what
//! makes transient faults recover under the [`crate::disk::Disk`] retry
//! loop without any extra bookkeeping: an armed window of
//! `fail_attempts = N` faults attempt indices `[at, at+N)`, and the N+1-th
//! attempt — the retry — falls past the window and succeeds
//! ("recover-after-N").
//!
//! A [`FaultHandle`] is a cheap clone that lets a test reconfigure the
//! fault plan mid-run and read the attempt/fault counters afterwards, even
//! while the backend itself is owned by a `Disk` inside a buffer pool.

use std::sync::{Arc, Mutex};

use crate::disk::{BatchError, DiskBackend, IoError, IoErrorKind};
use crate::page::{FileId, PageBuf, PageId, PAGE_SIZE};
use crate::util::rng::Rng;

/// A fault plan. Index-triggered and probability-triggered faults can be
/// combined; an attempt faults if *either* trigger fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the probability triggers' RNG stream.
    pub seed: u64,
    /// Fault the read attempts with indices `[n, n + fail_attempts)`.
    pub read_fault_at: Option<u64>,
    /// Fault the write attempts with indices `[n, n + fail_attempts)`.
    pub write_fault_at: Option<u64>,
    /// Fault each read attempt independently with this probability.
    pub read_fault_prob: f64,
    /// Fault each write attempt independently with this probability.
    pub write_fault_prob: f64,
    /// Width of the index-triggered fault window. With `transient` faults
    /// this is "recover after N attempts": the disk's retry loop succeeds
    /// once the window is exhausted.
    pub fail_attempts: u64,
    /// Mark injected errors transient (the disk layer retries those).
    pub transient: bool,
    /// Injected write faults tear the page: the first half of the new
    /// image reaches the backend, the rest keeps its old contents.
    pub torn_writes: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            read_fault_at: None,
            write_fault_at: None,
            read_fault_prob: 0.0,
            write_fault_prob: 0.0,
            fail_attempts: 1,
            transient: false,
            torn_writes: false,
        }
    }
}

impl FaultConfig {
    /// A plan that never faults (counters still track every transfer).
    pub fn none() -> Self {
        Self::default()
    }

    /// Fault the single read attempt with index `n`.
    pub fn read_at(n: u64) -> Self {
        FaultConfig {
            read_fault_at: Some(n),
            ..Self::default()
        }
    }

    /// Fault the single write attempt with index `n`.
    pub fn write_at(n: u64) -> Self {
        FaultConfig {
            write_fault_at: Some(n),
            ..Self::default()
        }
    }

    /// Marks the plan's faults transient (recoverable on retry).
    pub fn transient(mut self) -> Self {
        self.transient = true;
        self
    }

    /// Widens the index-triggered window to `n` consecutive attempts.
    pub fn lasting(mut self, n: u64) -> Self {
        self.fail_attempts = n;
        self
    }
}

#[derive(Debug)]
struct FaultInner {
    config: FaultConfig,
    rng: Rng,
    reads: u64,
    writes: u64,
    read_faults: u64,
    write_faults: u64,
}

impl FaultInner {
    fn new(config: FaultConfig) -> Self {
        FaultInner {
            rng: Rng::seed_from_u64(config.seed),
            config,
            reads: 0,
            writes: 0,
            read_faults: 0,
            write_faults: 0,
        }
    }

    /// Registers one attempt and decides whether it faults.
    fn attempt(&mut self, is_read: bool) -> Option<IoError> {
        let cfg = self.config;
        let (ctr, at, prob) = if is_read {
            (&mut self.reads, cfg.read_fault_at, cfg.read_fault_prob)
        } else {
            (&mut self.writes, cfg.write_fault_at, cfg.write_fault_prob)
        };
        let idx = *ctr;
        *ctr += 1;
        let armed = at.is_some_and(|a| idx >= a && idx - a < cfg.fail_attempts);
        let rolled = prob > 0.0 && self.rng.gen_bool(prob);
        if !(armed || rolled) {
            return None;
        }
        if is_read {
            self.read_faults += 1;
        } else {
            self.write_faults += 1;
        }
        // pid and (for writes) the torn-write kind are filled in by the
        // caller, which knows the transfer target.
        Some(IoError {
            pid: PageId::new(FileId(0), 0),
            kind: if is_read {
                IoErrorKind::Read
            } else {
                IoErrorKind::Write
            },
            transient: cfg.transient,
        })
    }
}

/// Shared view of a [`FaultBackend`]'s plan and counters. Clones are
/// handles to the same state.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    inner: Arc<Mutex<FaultInner>>,
}

impl FaultHandle {
    /// Replaces the fault plan and reseeds the RNG. Counters keep running:
    /// index triggers in the new plan are still measured from the last
    /// [`FaultHandle::reset`] (or construction).
    pub fn set_config(&self, config: FaultConfig) {
        let mut g = self.inner.lock().unwrap();
        g.rng = Rng::seed_from_u64(config.seed);
        g.config = config;
    }

    /// The current fault plan.
    pub fn config(&self) -> FaultConfig {
        self.inner.lock().unwrap().config
    }

    /// Zeroes the attempt/fault counters and reseeds the RNG, so index
    /// triggers count from the next transfer.
    pub fn reset(&self) {
        let mut g = self.inner.lock().unwrap();
        let cfg = g.config;
        *g = FaultInner::new(cfg);
    }

    /// Read attempts since the last reset (successful or faulted).
    pub fn reads(&self) -> u64 {
        self.inner.lock().unwrap().reads
    }

    /// Write attempts since the last reset (successful or faulted).
    pub fn writes(&self) -> u64 {
        self.inner.lock().unwrap().writes
    }

    /// Read faults injected since the last reset.
    pub fn read_faults(&self) -> u64 {
        self.inner.lock().unwrap().read_faults
    }

    /// Write faults injected since the last reset.
    pub fn write_faults(&self) -> u64 {
        self.inner.lock().unwrap().write_faults
    }

    /// Total faults injected since the last reset.
    pub fn faults(&self) -> u64 {
        let g = self.inner.lock().unwrap();
        g.read_faults + g.write_faults
    }
}

/// A [`DiskBackend`] decorator that injects faults per a [`FaultConfig`].
/// Metadata operations (create/delete/num_pages/live_files) pass through
/// untouched; only page transfers fault.
pub struct FaultBackend<B: DiskBackend> {
    backend: B,
    inner: Arc<Mutex<FaultInner>>,
}

impl<B: DiskBackend> FaultBackend<B> {
    /// Wraps `backend` with the given fault plan.
    pub fn new(backend: B, config: FaultConfig) -> Self {
        FaultBackend {
            backend,
            inner: Arc::new(Mutex::new(FaultInner::new(config))),
        }
    }

    /// A handle for reconfiguring the plan and reading counters after the
    /// backend has been moved into a [`crate::disk::Disk`].
    pub fn handle(&self) -> FaultHandle {
        FaultHandle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<B: DiskBackend> DiskBackend for FaultBackend<B> {
    fn create_file(&mut self) -> FileId {
        self.backend.create_file()
    }

    fn delete_file(&mut self, file: FileId) {
        self.backend.delete_file(file)
    }

    fn allocate_page(&mut self, file: FileId) -> Result<u32, IoError> {
        self.backend.allocate_page(file)
    }

    fn num_pages(&self, file: FileId) -> u32 {
        self.backend.num_pages(file)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.backend.live_files()
    }

    fn read_page(&mut self, pid: PageId, buf: &mut PageBuf) -> Result<(), IoError> {
        if let Some(mut e) = self.inner.lock().unwrap().attempt(true) {
            e.pid = pid;
            return Err(e);
        }
        self.backend.read_page(pid, buf)
    }

    fn write_page(&mut self, pid: PageId, buf: &PageBuf) -> Result<(), IoError> {
        let (fault, torn) = {
            let mut g = self.inner.lock().unwrap();
            let torn = g.config.torn_writes;
            (g.attempt(false), torn)
        };
        if let Some(mut e) = fault {
            e.pid = pid;
            if torn {
                // Tear the page: the first half of the new image lands,
                // the rest keeps whatever the backend held before.
                let mut img: PageBuf = [0u8; PAGE_SIZE];
                self.backend.read_page(pid, &mut img)?;
                img[..PAGE_SIZE / 2].copy_from_slice(&buf[..PAGE_SIZE / 2]);
                self.backend.write_page(pid, &img)?;
                e.kind = IoErrorKind::TornWrite;
            }
            return Err(e);
        }
        self.backend.write_page(pid, buf)
    }

    /// Native batch: each page consumes one read attempt, in order, and the
    /// batch stops at the first injected fault — attempt indices past the
    /// failing page are *not* consumed, so an armed index always names one
    /// concrete page whether it is reached page-at-a-time or mid-batch.
    fn read_pages(
        &mut self,
        file: FileId,
        start: u32,
        bufs: &mut [&mut PageBuf],
    ) -> Result<(), BatchError> {
        for (i, buf) in bufs.iter_mut().enumerate() {
            let pid = PageId::new(file, start + i as u32);
            if let Some(mut e) = self.inner.lock().unwrap().attempt(true) {
                e.pid = pid;
                return Err(BatchError { done: i, error: e });
            }
            self.backend
                .read_page(pid, buf)
                .map_err(|error| BatchError { done: i, error })?;
        }
        Ok(())
    }

    /// Native batch; see [`read_pages`](FaultBackend::read_pages) for the
    /// attempt discipline. An injected fault tears the *batch* at the
    /// failing page (its prefix reached the device); with
    /// [`FaultConfig::torn_writes`] the failing page itself is also torn.
    fn write_pages(
        &mut self,
        file: FileId,
        start: u32,
        bufs: &[&PageBuf],
    ) -> Result<(), BatchError> {
        for (i, buf) in bufs.iter().enumerate() {
            let pid = PageId::new(file, start + i as u32);
            let (fault, torn) = {
                let mut g = self.inner.lock().unwrap();
                let torn = g.config.torn_writes;
                (g.attempt(false), torn)
            };
            if let Some(mut e) = fault {
                e.pid = pid;
                if torn {
                    let mut img: PageBuf = [0u8; PAGE_SIZE];
                    self.backend
                        .read_page(pid, &mut img)
                        .map_err(|error| BatchError { done: i, error })?;
                    img[..PAGE_SIZE / 2].copy_from_slice(&buf[..PAGE_SIZE / 2]);
                    self.backend
                        .write_page(pid, &img)
                        .map_err(|error| BatchError { done: i, error })?;
                    e.kind = IoErrorKind::TornWrite;
                }
                return Err(BatchError { done: i, error: e });
            }
            self.backend
                .write_page(pid, buf)
                .map_err(|error| BatchError { done: i, error })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{Disk, MemBackend};
    use crate::stats::CostModel;

    fn disk_with(config: FaultConfig) -> (Disk, FaultHandle) {
        let fb = FaultBackend::new(MemBackend::new(), config);
        let h = fb.handle();
        (Disk::new(Box::new(fb), CostModel::free()), h)
    }

    #[test]
    fn read_fault_fires_at_exact_index() {
        let (mut disk, h) = disk_with(FaultConfig::read_at(2));
        let f = disk.create_file();
        for _ in 0..4 {
            disk.allocate_page(f).unwrap();
        }
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap(); // idx 0
        disk.read_page(PageId::new(f, 1), &mut buf).unwrap(); // idx 1
        let e = disk.read_page(PageId::new(f, 2), &mut buf).unwrap_err();
        assert_eq!(e.pid, PageId::new(f, 2));
        assert_eq!(e.kind, IoErrorKind::Read);
        assert!(!e.transient);
        disk.read_page(PageId::new(f, 3), &mut buf).unwrap(); // idx 3: past window
        assert_eq!(h.reads(), 4);
        assert_eq!(h.read_faults(), 1);
        // Failed attempts are not charged to the stats.
        assert_eq!(disk.stats().reads(), 3);
    }

    #[test]
    fn transient_fault_recovers_through_disk_retry() {
        // Window of 2 transient faults; retry limit 3 absorbs them.
        let (mut disk, h) = disk_with(FaultConfig::write_at(0).transient().lasting(2));
        let f = disk.create_file();
        disk.allocate_page(f).unwrap();
        let buf = [7u8; PAGE_SIZE];
        disk.write_page(PageId::new(f, 0), &buf).unwrap();
        assert_eq!(h.writes(), 3, "two faulted attempts + one success");
        assert_eq!(h.write_faults(), 2);
        assert_eq!(disk.stats().writes(), 1, "stats charge the success only");
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 0), &mut out).unwrap();
        assert_eq!(out, buf);
    }

    #[test]
    fn transient_fault_beyond_retry_limit_surfaces() {
        let (mut disk, _h) = disk_with(FaultConfig::write_at(0).transient().lasting(10));
        let f = disk.create_file();
        disk.allocate_page(f).unwrap();
        let e = disk
            .write_page(PageId::new(f, 0), &[1u8; PAGE_SIZE])
            .unwrap_err();
        assert!(e.transient);
    }

    #[test]
    fn torn_write_leaves_half_old_half_new() {
        let mut cfg = FaultConfig::write_at(1);
        cfg.torn_writes = true;
        let (mut disk, h) = disk_with(cfg);
        let f = disk.create_file();
        disk.allocate_page(f).unwrap();
        let pid = PageId::new(f, 0);
        disk.write_page(pid, &[0xAAu8; PAGE_SIZE]).unwrap(); // idx 0: ok
        let e = disk.write_page(pid, &[0xBBu8; PAGE_SIZE]).unwrap_err(); // idx 1: torn
        assert_eq!(e.kind, IoErrorKind::TornWrite);
        assert_eq!(h.write_faults(), 1);
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(pid, &mut out).unwrap();
        assert!(
            out[..PAGE_SIZE / 2].iter().all(|&b| b == 0xBB),
            "new prefix"
        );
        assert!(
            out[PAGE_SIZE / 2..].iter().all(|&b| b == 0xAA),
            "stale suffix"
        );
    }

    #[test]
    fn probabilistic_faults_are_seed_deterministic() {
        let run = |seed: u64| {
            let (mut disk, h) = disk_with(FaultConfig {
                seed,
                read_fault_prob: 0.3,
                ..FaultConfig::default()
            });
            let f = disk.create_file();
            disk.allocate_page(f).unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            let outcomes: Vec<bool> = (0..64)
                .map(|_| disk.read_page(PageId::new(f, 0), &mut buf).is_ok())
                .collect();
            (outcomes, h.read_faults())
        };
        let (a, fa) = run(42);
        let (b, fb) = run(42);
        let (c, _) = run(43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seed, different fault pattern");
        assert!(fa > 0, "p=0.3 over 64 attempts should fault");
        assert_eq!(fa, fb);
    }

    #[test]
    fn batch_read_fault_lands_mid_batch() {
        // Arm read index 2; a 4-page batch tears there: 2 pages done and
        // charged, the attempt index past the fault not consumed.
        let (mut disk, h) = disk_with(FaultConfig::read_at(2));
        let f = disk.create_file();
        for _ in 0..4 {
            disk.allocate_page(f).unwrap();
        }
        let mut bufs = [[0u8; PAGE_SIZE]; 4];
        let mut refs: Vec<&mut PageBuf> = bufs.iter_mut().collect();
        let e = disk.read_pages(f, 0, &mut refs).unwrap_err();
        assert_eq!(e.done, 2);
        assert_eq!(e.error.pid, PageId::new(f, 2));
        assert_eq!(h.reads(), 3, "attempts past the failing page untouched");
        assert_eq!(disk.stats().reads(), 2, "only the torn prefix is charged");
    }

    #[test]
    fn transient_mid_batch_fault_resumes_with_identical_charging() {
        let (mut disk, h) = disk_with(FaultConfig::read_at(2).transient());
        let f = disk.create_file();
        for _ in 0..4 {
            disk.allocate_page(f).unwrap();
        }
        let mut bufs = [[0u8; PAGE_SIZE]; 4];
        let mut refs: Vec<&mut PageBuf> = bufs.iter_mut().collect();
        disk.read_pages(f, 0, &mut refs).unwrap();
        assert_eq!(h.read_faults(), 1);
        assert_eq!(h.reads(), 5, "4 pages + 1 faulted attempt");
        // Resume continues the run: charging matches a fault-free batch.
        let s = disk.stats();
        assert_eq!((s.rand_reads, s.seq_reads), (1, 3));
    }

    #[test]
    fn batch_write_fault_tears_the_batch() {
        let (mut disk, h) = disk_with(FaultConfig::write_at(1));
        let f = disk.create_file();
        for _ in 0..3 {
            disk.allocate_page(f).unwrap();
        }
        let imgs = [
            [0xAAu8; PAGE_SIZE],
            [0xBBu8; PAGE_SIZE],
            [0xCCu8; PAGE_SIZE],
        ];
        let refs: Vec<&PageBuf> = imgs.iter().collect();
        let e = disk.write_pages(f, 0, &refs).unwrap_err();
        assert_eq!(e.done, 1);
        assert_eq!(e.error.pid, PageId::new(f, 1));
        assert_eq!(h.writes(), 2);
        assert_eq!(disk.stats().writes(), 1);
        // The prefix reached the device; the failing page and the rest
        // kept their old (zeroed) contents.
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 0), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0xAA));
        disk.read_page(PageId::new(f, 1), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn torn_write_inside_batch_tears_the_failing_page() {
        let mut cfg = FaultConfig::write_at(1);
        cfg.torn_writes = true;
        let (mut disk, _h) = disk_with(cfg);
        let f = disk.create_file();
        for _ in 0..2 {
            disk.allocate_page(f).unwrap();
        }
        let imgs = [[0xAAu8; PAGE_SIZE], [0xBBu8; PAGE_SIZE]];
        let refs: Vec<&PageBuf> = imgs.iter().collect();
        let e = disk.write_pages(f, 0, &refs).unwrap_err();
        assert_eq!(e.error.kind, IoErrorKind::TornWrite);
        let mut out = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 1), &mut out).unwrap();
        assert!(out[..PAGE_SIZE / 2].iter().all(|&b| b == 0xBB));
        assert!(out[PAGE_SIZE / 2..].iter().all(|&b| b == 0));
    }

    #[test]
    fn reconfigure_and_reset_through_handle() {
        let (mut disk, h) = disk_with(FaultConfig::none());
        let f = disk.create_file();
        disk.allocate_page(f).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap();
        assert_eq!(h.reads(), 1);
        h.reset();
        assert_eq!(h.reads(), 0);
        h.set_config(FaultConfig::read_at(0));
        assert!(disk.read_page(PageId::new(f, 0), &mut buf).is_err());
        h.set_config(FaultConfig::none());
        disk.read_page(PageId::new(f, 0), &mut buf).unwrap();
        assert_eq!(h.reads(), 2, "counters restart at the reset");
        assert_eq!(h.read_faults(), 1);
    }
}
