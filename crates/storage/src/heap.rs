//! Heap files: unordered, append-only files of fixed-width records.
//!
//! Page layout: a 4-byte little-endian record count followed by densely
//! packed records. `‖R‖` — the page count the paper's cost formulas are
//! written in — is exactly [`HeapFile::pages`].

use std::marker::PhantomData;

use crate::access::ScanOptions;
use crate::buffer::{BufferPool, PageRef, PoolError};
use crate::page::{FileId, PageBuf, PageId, PAGE_SIZE};
use crate::record::FixedRecord;

/// Bytes reserved for the per-page header (record count).
const HEADER: usize = 4;

/// Records of type `R` that fit in one page.
pub const fn records_per_page<R: FixedRecord>() -> usize {
    (PAGE_SIZE - HEADER) / R::SIZE
}

/// A handle to a heap file of `R` records.
///
/// The handle carries the file's vital statistics (page and record counts)
/// in memory; it is produced by [`HeapWriter::finish`] and consumed by
/// scans, sorts and joins.
#[derive(Debug)]
pub struct HeapFile<R: FixedRecord> {
    file: FileId,
    pages: u32,
    records: u64,
    /// Folded [`FixedRecord::bounds_hint`] over all records, when the
    /// record type provides one — free catalog statistics.
    bounds: Option<(u64, u64)>,
    _marker: PhantomData<R>,
}

// Manual impls: `R` need not be `Clone` for the handle to be copyable.
impl<R: FixedRecord> Clone for HeapFile<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R: FixedRecord> Copy for HeapFile<R> {}

impl<R: FixedRecord> HeapFile<R> {
    /// Creates an empty heap file on `pool`'s disk.
    pub fn create(pool: &BufferPool) -> Self {
        HeapFile {
            file: pool.create_file(),
            pages: 0,
            records: 0,
            bounds: None,
            _marker: PhantomData,
        }
    }

    /// Builds a heap file from an iterator of records.
    pub fn from_iter<I: IntoIterator<Item = R>>(
        pool: &BufferPool,
        items: I,
    ) -> Result<Self, PoolError> {
        let mut w = HeapWriter::create(pool)?;
        for r in items {
            w.push(r)?;
        }
        w.finish()
    }

    /// The underlying file id.
    #[inline]
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of pages, the paper's `‖R‖`.
    #[inline]
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Number of records, the paper's `|R|`.
    #[inline]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Whether the file holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The folded `(lo, hi)` keyspace bounds of the records, if the record
    /// type reports them (see [`FixedRecord::bounds_hint`]).
    #[inline]
    pub fn bounds(&self) -> Option<(u64, u64)> {
        self.bounds
    }

    /// Sequentially scans all records. The scan pins one page at a time and
    /// declares sequential access at the default read-ahead depth
    /// ([`crate::access::DEFAULT_IO_DEPTH`]); use
    /// [`scan_with`](HeapFile::scan_with) to tune or disable read-ahead.
    pub fn scan<'a>(&self, pool: &'a BufferPool) -> HeapScan<'a, R> {
        self.scan_at(pool, ScanPos::START)
    }

    /// [`scan`](HeapFile::scan) with explicit [`ScanOptions`] — operators
    /// sharing a frame budget across several streams pass a clamped or
    /// shared depth here.
    pub fn scan_with<'a>(&self, pool: &'a BufferPool, opts: ScanOptions) -> HeapScan<'a, R> {
        self.scan_at_with(pool, ScanPos::START, opts)
    }

    /// Starts a scan at a previously captured [`ScanPos`] — the rescan
    /// primitive tree-merge joins (MPMGJN) need.
    pub fn scan_at<'a>(&self, pool: &'a BufferPool, pos: ScanPos) -> HeapScan<'a, R> {
        self.scan_at_with(pool, pos, ScanOptions::default())
    }

    /// [`scan_at`](HeapFile::scan_at) with explicit [`ScanOptions`].
    pub fn scan_at_with<'a>(
        &self,
        pool: &'a BufferPool,
        pos: ScanPos,
        opts: ScanOptions,
    ) -> HeapScan<'a, R> {
        HeapScan {
            pool,
            file: self.file,
            pages: self.pages,
            next_page: pos.page,
            cur: None,
            idx: pos.idx,
            skip_on_load: pos.idx,
            in_page: 0,
            opts,
            _marker: PhantomData,
        }
    }

    /// Reads the whole file into a `Vec` (test/verification helper; real
    /// operators stream via [`scan`](HeapFile::scan)).
    pub fn read_all(&self, pool: &BufferPool) -> Result<Vec<R>, PoolError> {
        self.read_all_with(pool, ScanOptions::default())
    }

    /// [`read_all`](HeapFile::read_all) under explicit [`ScanOptions`], for
    /// callers that must honor a declared access pattern (operators pass
    /// their context's read options so a prefetch-off run stays
    /// prefetch-free even through whole-file loads).
    pub fn read_all_with(&self, pool: &BufferPool, opts: ScanOptions) -> Result<Vec<R>, PoolError> {
        let mut out = Vec::with_capacity(self.records as usize);
        let mut scan = self.scan_with(pool, opts);
        while let Some(r) = scan.next_record()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Deletes the file's disk space. The handle must not be used after.
    pub fn drop_file(self, pool: &BufferPool) {
        pool.delete_file(self.file);
    }
}

/// Append writer for a heap file. Buffers page images in its own memory
/// (no pool frames consumed) and appends them with vectored write-through,
/// coalescing up to the declared [`AccessPattern::WriteOnce`] batch depth
/// per disk-arm movement.
///
/// [`AccessPattern::WriteOnce`]: crate::access::AccessPattern::WriteOnce
pub struct HeapWriter<'a, R: FixedRecord> {
    pool: &'a BufferPool,
    file: FileId,
    pages: u32,
    records: u64,
    bounds: Option<(u64, u64)>,
    /// Records buffered in the (unpinned-between-pushes) current page image.
    buf: Vec<u8>,
    in_buf: usize,
    /// Sealed page images awaiting one vectored append.
    pending: Vec<Box<PageBuf>>,
    /// Pages coalesced per append batch (the write-once depth).
    batch: usize,
    _marker: PhantomData<R>,
}

impl<'a, R: FixedRecord> HeapWriter<'a, R> {
    /// Starts writing a brand-new heap file, batching appends at the
    /// default write-once depth; use [`create_with`](HeapWriter::create_with)
    /// to tune or disable batching.
    pub fn create(pool: &'a BufferPool) -> Result<Self, PoolError> {
        Self::create_with(pool, ScanOptions::default())
    }

    /// Starts writing a brand-new heap file with explicit [`ScanOptions`]
    /// (the write-once counterpart of the declared depth is used, so
    /// passing an operator's read options directly does the right thing).
    pub fn create_with(pool: &'a BufferPool, opts: ScanOptions) -> Result<Self, PoolError> {
        Ok(HeapWriter {
            pool,
            file: pool.create_file(),
            pages: 0,
            records: 0,
            bounds: None,
            buf: vec![0u8; PAGE_SIZE],
            in_buf: 0,
            pending: Vec::new(),
            batch: opts.as_write().depth(),
            _marker: PhantomData,
        })
    }

    /// Appends one record.
    pub fn push(&mut self, r: R) -> Result<(), PoolError> {
        let cap = records_per_page::<R>();
        if self.in_buf == cap {
            self.spill()?;
        }
        let off = HEADER + self.in_buf * R::SIZE;
        r.write(&mut self.buf[off..off + R::SIZE]);
        if let Some((lo, hi)) = r.bounds_hint() {
            self.bounds = Some(match self.bounds {
                None => (lo, hi),
                Some((l0, h0)) => (l0.min(lo), h0.max(hi)),
            });
        }
        self.in_buf += 1;
        self.records += 1;
        Ok(())
    }

    /// Number of records pushed so far.
    #[inline]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The id of the file being written. Lets callers (e.g. the external
    /// sort) register the file for cleanup before the writer finishes.
    #[inline]
    pub fn file_id(&self) -> FileId {
        self.file
    }

    fn spill(&mut self) -> Result<(), PoolError> {
        if self.in_buf == 0 {
            return Ok(());
        }
        self.buf[..HEADER].copy_from_slice(&(self.in_buf as u32).to_le_bytes());
        // Seal the page image; the actual write-through happens in batches
        // (bulk output bypasses the pool, see
        // `BufferPool::append_pages_through`).
        let mut img: Box<PageBuf> = Box::new([0u8; PAGE_SIZE]);
        img.copy_from_slice(&self.buf);
        self.pending.push(img);
        self.pages += 1;
        self.in_buf = 0;
        if self.pending.len() >= self.batch {
            self.flush_pending()?;
        }
        Ok(())
    }

    fn flush_pending(&mut self) -> Result<(), PoolError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let bufs: Vec<&PageBuf> = self.pending.iter().map(|b| &**b).collect();
        self.pool.append_pages_through(self.file, &bufs)?;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the tail page and returns the finished file handle.
    pub fn finish(mut self) -> Result<HeapFile<R>, PoolError> {
        self.spill()?;
        self.flush_pending()?;
        Ok(HeapFile {
            file: self.file,
            pages: self.pages,
            records: self.records,
            bounds: self.bounds,
            _marker: PhantomData,
        })
    }
}

/// A resumable position inside a heap file, captured with
/// [`HeapScan::position`] *before* reading the record it should resume at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanPos {
    page: u32,
    idx: usize,
}

impl ScanPos {
    /// The beginning of the file.
    pub const START: ScanPos = ScanPos { page: 0, idx: 0 };
}

/// Sequential scanner over a heap file. See [`HeapFile::scan`].
pub struct HeapScan<'a, R: FixedRecord> {
    pool: &'a BufferPool,
    file: FileId,
    pages: u32,
    next_page: u32,
    cur: Option<PageRef<'a>>,
    idx: usize,
    /// Intra-page offset to apply when the first page loads (scan_at).
    skip_on_load: usize,
    in_page: usize,
    /// Declared access pattern, forwarded to the pool on every page fetch.
    opts: ScanOptions,
    _marker: PhantomData<R>,
}

impl<'a, R: FixedRecord> HeapScan<'a, R> {
    /// The position of the *next* record this scan would return; feed it
    /// to [`HeapFile::scan_at`] to resume here later.
    pub fn position(&self) -> ScanPos {
        match &self.cur {
            Some(_) => ScanPos {
                page: self.next_page - 1,
                idx: self.idx,
            },
            None => ScanPos {
                page: self.next_page,
                idx: self.skip_on_load,
            },
        }
    }

    /// Consumes the scan into an iterator of `Result` items, for feeding
    /// streaming consumers (e.g. index bulk loads) that must propagate
    /// I/O faults instead of panicking like the plain [`Iterator`] impl.
    pub fn results(mut self) -> impl Iterator<Item = Result<R, PoolError>> + 'a
    where
        R: 'a,
    {
        std::iter::from_fn(move || self.next_record().transpose())
    }

    /// Returns the next record, or `None` at end of file.
    ///
    /// Page contents are validated as they stream by — a header record
    /// count beyond page capacity or a record [`FixedRecord::validate`]
    /// rejects surfaces as [`PoolError::Corrupt`] naming the page, instead
    /// of a slice panic or silently decoded garbage.
    pub fn next_record(&mut self) -> Result<Option<R>, PoolError> {
        loop {
            if let Some(page) = &self.cur {
                if self.idx < self.in_page {
                    let off = HEADER + self.idx * R::SIZE;
                    let bytes = &page[off..off + R::SIZE];
                    R::validate(bytes).map_err(|reason| PoolError::Corrupt {
                        pid: PageId::new(self.file, self.next_page - 1),
                        reason,
                    })?;
                    let r = R::read(bytes);
                    self.idx += 1;
                    return Ok(Some(r));
                }
                self.cur = None;
            }
            if self.next_page == self.pages {
                return Ok(None);
            }
            let pid = PageId::new(self.file, self.next_page);
            let page = self.pool.read_page_with(pid, self.opts)?;
            self.next_page += 1;
            let in_page = u32::from_le_bytes(page[..HEADER].try_into().unwrap()) as usize;
            if in_page > records_per_page::<R>() {
                return Err(PoolError::Corrupt {
                    pid,
                    reason: "page header record count exceeds page capacity",
                });
            }
            self.in_page = in_page;
            self.idx = self.skip_on_load;
            self.skip_on_load = 0;
            self.cur = Some(page);
        }
    }
}

impl<R: FixedRecord> Iterator for HeapScan<'_, R> {
    type Item = R;

    /// Iterator convenience that panics on any pool error — frame
    /// exhaustion or a device fault. Code that must survive injected I/O
    /// faults (everything the fault-sweep harness exercises) uses the
    /// fallible [`HeapScan::next_record`] instead.
    fn next(&mut self) -> Option<R> {
        self.next_record()
            .unwrap_or_else(|e| panic!("heap scan failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Disk::in_memory_free(), frames)
    }

    #[test]
    fn write_scan_round_trip() {
        let p = pool(4);
        let data: Vec<u64> = (0..10_000).map(|i| i * 3 + 1).collect();
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        assert_eq!(hf.records(), 10_000);
        let expect_pages = 10_000usize.div_ceil(records_per_page::<u64>());
        assert_eq!(hf.pages() as usize, expect_pages);
        let back: Vec<u64> = hf.scan(&p).collect();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_file() {
        let p = pool(2);
        let hf = HeapFile::<u64>::from_iter(&p, std::iter::empty()).unwrap();
        assert!(hf.is_empty());
        assert_eq!(hf.pages(), 0);
        assert_eq!(hf.scan(&p).count(), 0);
    }

    #[test]
    fn pair_records() {
        let p = pool(4);
        let data: Vec<(u64, u64)> = (0..1000).map(|i| (i, i * i)).collect();
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let back: Vec<(u64, u64)> = hf.scan(&p).collect();
        assert_eq!(back, data);
    }

    #[test]
    fn scan_io_equals_page_count() {
        let p = pool(2); // smaller than the file: every page is a real read
        let data: Vec<u64> = (0..5000).collect();
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        p.flush_all().unwrap();
        // Evict everything by scanning a second file of the same size.
        let other = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        p.flush_all().unwrap();
        let _ = other.read_all(&p).unwrap();
        let before = p.io_stats();
        let n = hf.scan(&p).count();
        assert_eq!(n, 5000);
        let delta = p.io_stats().since(&before);
        assert_eq!(delta.reads(), hf.pages() as u64);
        // A pure scan is perfectly sequential except the first page.
        assert_eq!(delta.rand_reads, 1);
    }

    #[test]
    fn writer_batches_appends() {
        let p = pool(2);
        let n = records_per_page::<u64>() * 3 + 1; // 4 pages
        let hf = HeapFile::from_iter(&p, 0..n as u64).unwrap();
        assert_eq!(hf.pages(), 4);
        // All four pages went out in one vectored append: one seek, three
        // sequential transfers.
        let d = p.io_stats();
        assert_eq!(d.writes(), 4);
        assert_eq!((d.rand_writes, d.seq_writes), (1, 3));
        let back: Vec<u64> = hf.scan(&p).collect();
        assert_eq!(back.len(), n);
    }

    #[test]
    fn random_scan_disables_read_ahead() {
        let p = pool(8);
        let hf = HeapFile::from_iter(&p, 0..5000u64).unwrap();
        p.evict_all().unwrap();
        let mut s = hf.scan_with(&p, ScanOptions::random());
        s.next_record().unwrap().unwrap();
        assert_eq!(p.io_stats().reads(), 1);
        assert_eq!(p.prefetched(), 0);
    }

    #[test]
    fn partial_last_page_preserved() {
        let p = pool(2);
        let n = records_per_page::<u64>() + 3; // one full page + 3
        let hf = HeapFile::from_iter(&p, 0..n as u64).unwrap();
        assert_eq!(hf.pages(), 2);
        assert_eq!(hf.scan(&p).count(), n);
    }

    #[test]
    fn drop_file_releases_pages() {
        let p = pool(2);
        let hf = HeapFile::from_iter(&p, 0..1000u64).unwrap();
        let fid = hf.file_id();
        hf.drop_file(&p);
        assert_eq!(p.num_pages(fid), 0);
    }

    #[test]
    fn scan_position_round_trip() {
        let p = pool(4);
        let data: Vec<u64> = (0..2000).collect();
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let mut s = hf.scan(&p);
        // Consume 700 records, capture, consume the rest.
        for _ in 0..700 {
            s.next_record().unwrap().unwrap();
        }
        let pos = s.position();
        let rest: Vec<u64> = std::iter::from_fn(|| s.next_record().unwrap()).collect();
        assert_eq!(rest, data[700..]);
        // Resume from the captured position.
        let mut s2 = hf.scan_at(&p, pos);
        let resumed: Vec<u64> = std::iter::from_fn(|| s2.next_record().unwrap()).collect();
        assert_eq!(resumed, data[700..]);
        // Position at page boundaries round-trips too.
        let mut s3 = hf.scan(&p);
        let per_page = records_per_page::<u64>();
        for _ in 0..per_page {
            s3.next_record().unwrap().unwrap();
        }
        let pos = s3.position();
        let mut s4 = hf.scan_at(&p, pos);
        assert_eq!(s4.next_record().unwrap(), Some(per_page as u64));
        // START equals a plain scan.
        let mut s5 = hf.scan_at(&p, ScanPos::START);
        assert_eq!(s5.next_record().unwrap(), Some(0));
    }

    #[test]
    fn corrupt_header_count_surfaces_as_error() {
        let p = pool(4);
        let hf = HeapFile::from_iter(&p, 0..1000u64).unwrap();
        let pid = PageId::new(hf.file_id(), 1);
        {
            let mut page = p.write_page(pid).unwrap();
            // A count beyond page capacity would index past the page.
            page[..HEADER].copy_from_slice(&u32::MAX.to_le_bytes());
        }
        let mut s = hf.scan(&p);
        let err = loop {
            match s.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("corruption not detected"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.failing_page(), Some(pid));
        assert!(matches!(err, PoolError::Corrupt { .. }));
    }

    /// A record type that rejects a zero payload, exercising
    /// [`FixedRecord::validate`].
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct NonZero(u64);

    impl FixedRecord for NonZero {
        const SIZE: usize = 8;
        fn write(&self, out: &mut [u8]) {
            self.0.write(out);
        }
        fn read(buf: &[u8]) -> Self {
            NonZero(u64::read(buf))
        }
        fn validate(buf: &[u8]) -> Result<(), &'static str> {
            if u64::read(buf) == 0 {
                Err("zero payload")
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn corrupt_record_surfaces_as_error() {
        let p = pool(4);
        let hf = HeapFile::from_iter(&p, (1..=1000u64).map(NonZero)).unwrap();
        let pid = PageId::new(hf.file_id(), 0);
        {
            let mut page = p.write_page(pid).unwrap();
            // Zero one record in the middle of page 0.
            let off = HEADER + 5 * 8;
            page[off..off + 8].fill(0);
        }
        let mut s = hf.scan(&p);
        for _ in 0..5 {
            s.next_record().unwrap().unwrap();
        }
        let err = s.next_record().unwrap_err();
        assert_eq!(
            err,
            PoolError::Corrupt {
                pid,
                reason: "zero payload"
            }
        );
    }

    #[test]
    fn writer_uses_bounded_frames() {
        // A writer holds no pinned page between pushes: with a 1-frame pool
        // a full write-out still succeeds.
        let p = pool(1);
        let hf = HeapFile::from_iter(&p, 0..50_000u64).unwrap();
        assert_eq!(hf.records(), 50_000);
    }
}
