//! Heap files: unordered, append-only files of fixed-width records.
//!
//! Page layout: a 4-byte little-endian record count followed by densely
//! packed records. `‖R‖` — the page count the paper's cost formulas are
//! written in — is exactly [`HeapFile::pages`].
//!
//! Writers additionally maintain **region zone maps** (see [`crate::zone`]):
//! one `(min start, max end, min/max height)` summary per sealed page,
//! registered with the pool at [`HeapWriter::finish`]. A scan given a
//! [`crate::zone::ScanFilter`] consults the map before each page fetch and skips pages
//! that provably hold no qualifying record — at zero I/O cost, counted in
//! [`crate::buffer::PoolStats::pages_skipped`]. No page is ever pinned
//! across a skipped range: the scan releases its current page before the
//! zone check runs.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::access::ScanOptions;
use crate::buffer::{BufferPool, PageRef, PoolError};
use crate::codec::{parse_packed_header, PackedHeader, PackedPageBuilder};
use crate::page::{FileId, PageBuf, PageId, PAGE_SIZE};
use crate::record::FixedRecord;
use crate::wal::{Wal, WalOp};
use crate::zone::{FileZones, ZoneEntry};

/// Bytes reserved for the per-page header (record count).
const HEADER: usize = 4;

/// Records of type `R` that fit in one page.
pub const fn records_per_page<R: FixedRecord>() -> usize {
    (PAGE_SIZE - HEADER) / R::SIZE
}

/// A handle to a heap file of `R` records.
///
/// The handle carries the file's vital statistics (page and record counts)
/// in memory; it is produced by [`HeapWriter::finish`] and consumed by
/// scans, sorts and joins.
#[derive(Debug)]
pub struct HeapFile<R: FixedRecord> {
    file: FileId,
    pages: u32,
    records: u64,
    /// Folded [`FixedRecord::bounds_hint`] over all records, when the
    /// record type provides one — free catalog statistics.
    bounds: Option<(u64, u64)>,
    /// Folded [`FixedRecord::height_hint`] over all records — the file
    /// half of the zone map (per-page entries live in the pool registry).
    heights: Option<(u32, u32)>,
    /// The page incremental inserts are currently filling (a recycled
    /// free-list page keeps receiving records until it is full). `None`
    /// falls back to the file's last page.
    active: Option<u32>,
    _marker: PhantomData<R>,
}

// Manual impls: `R` need not be `Clone` for the handle to be copyable.
impl<R: FixedRecord> Clone for HeapFile<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R: FixedRecord> Copy for HeapFile<R> {}

impl<R: FixedRecord> HeapFile<R> {
    /// Creates an empty heap file on `pool`'s disk.
    pub fn create(pool: &BufferPool) -> Self {
        HeapFile {
            file: pool.create_file(),
            pages: 0,
            records: 0,
            bounds: None,
            heights: None,
            active: None,
            _marker: PhantomData,
        }
    }

    /// Builds a heap file from an iterator of records.
    pub fn from_iter<I: IntoIterator<Item = R>>(
        pool: &BufferPool,
        items: I,
    ) -> Result<Self, PoolError> {
        Self::from_iter_with(pool, ScanOptions::default(), items)
    }

    /// [`from_iter`](HeapFile::from_iter) under explicit [`ScanOptions`] —
    /// the way to build a file honoring a caller's write depth and
    /// compression setting.
    pub fn from_iter_with<I: IntoIterator<Item = R>>(
        pool: &BufferPool,
        opts: ScanOptions,
        items: I,
    ) -> Result<Self, PoolError> {
        let mut w = HeapWriter::create_with(pool, opts)?;
        for r in items {
            w.push(r)?;
        }
        w.finish()
    }

    /// The underlying file id.
    #[inline]
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of pages, the paper's `‖R‖`.
    #[inline]
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Number of records, the paper's `|R|`.
    #[inline]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Whether the file holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The folded `(lo, hi)` keyspace bounds of the records, if the record
    /// type reports them (see [`FixedRecord::bounds_hint`]).
    #[inline]
    pub fn bounds(&self) -> Option<(u64, u64)> {
        self.bounds
    }

    /// The folded `(min, max)` height range of the records, if the record
    /// type reports heights (see [`FixedRecord::height_hint`]).
    #[inline]
    pub fn height_bounds(&self) -> Option<(u32, u32)> {
        self.heights
    }

    /// The file-level zone (bounds plus height range together), when both
    /// statistics exist — the summary other operators derive pruning
    /// filters from.
    pub fn zone(&self) -> Option<ZoneEntry> {
        match (self.bounds, self.heights) {
            (Some((lo, hi)), Some((min_h, max_h))) => Some(ZoneEntry {
                lo,
                hi,
                min_h,
                max_h,
            }),
            _ => None,
        }
    }

    /// Sequentially scans all records. The scan pins one page at a time and
    /// declares sequential access at the default read-ahead depth
    /// ([`crate::access::DEFAULT_IO_DEPTH`]); use
    /// [`scan_with`](HeapFile::scan_with) to tune or disable read-ahead.
    pub fn scan<'a>(&self, pool: &'a BufferPool) -> HeapScan<'a, R> {
        self.scan_at(pool, ScanPos::START)
    }

    /// [`scan`](HeapFile::scan) with explicit [`ScanOptions`] — operators
    /// sharing a frame budget across several streams pass a clamped or
    /// shared depth here.
    pub fn scan_with<'a>(&self, pool: &'a BufferPool, opts: ScanOptions) -> HeapScan<'a, R> {
        self.scan_at_with(pool, ScanPos::START, opts)
    }

    /// Starts a scan at a previously captured [`ScanPos`] — the rescan
    /// primitive tree-merge joins (MPMGJN) need.
    pub fn scan_at<'a>(&self, pool: &'a BufferPool, pos: ScanPos) -> HeapScan<'a, R> {
        self.scan_at_with(pool, pos, ScanOptions::default())
    }

    /// [`scan_at`](HeapFile::scan_at) with explicit [`ScanOptions`].
    pub fn scan_at_with<'a>(
        &self,
        pool: &'a BufferPool,
        pos: ScanPos,
        opts: ScanOptions,
    ) -> HeapScan<'a, R> {
        // The zone map is only consulted by filtered scans; unfiltered
        // scans skip the registry lookup entirely.
        let zones = if opts.filter.is_all() {
            None
        } else {
            pool.file_zones(self.file)
        };
        HeapScan {
            pool,
            file: self.file,
            pages: self.pages,
            next_page: pos.page,
            cur: None,
            idx: pos.idx,
            skip_on_load: pos.idx,
            in_page: 0,
            opts,
            zones,
            pending_filtered: 0,
            packed: None,
            cache: Vec::new(),
            cache_valid: false,
            _marker: PhantomData,
        }
    }

    /// Reads the whole file into a `Vec` (test/verification helper; real
    /// operators stream via [`scan`](HeapFile::scan)).
    pub fn read_all(&self, pool: &BufferPool) -> Result<Vec<R>, PoolError> {
        self.read_all_with(pool, ScanOptions::default())
    }

    /// [`read_all`](HeapFile::read_all) under explicit [`ScanOptions`], for
    /// callers that must honor a declared access pattern (operators pass
    /// their context's read options so a prefetch-off run stays
    /// prefetch-free even through whole-file loads).
    pub fn read_all_with(&self, pool: &BufferPool, opts: ScanOptions) -> Result<Vec<R>, PoolError> {
        let mut out = Vec::with_capacity(self.records as usize);
        let mut scan = self.scan_with(pool, opts);
        while let Some(r) = scan.next_record()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Deletes the file's disk space. The handle must not be used after.
    pub fn drop_file(self, pool: &BufferPool) {
        pool.delete_file(self.file);
    }

    /// Rebuilds a handle (and the file's zone map) for an existing heap
    /// file by scanning it — the post-crash path: [`crate::wal::recover`]
    /// restores the pages, `open` restores the in-memory catalog state
    /// a never-crashed writer would hold.
    pub fn open(pool: &BufferPool, file: FileId) -> Result<Self, PoolError> {
        let pages = pool.num_pages(file);
        let mut hf = HeapFile {
            file,
            pages,
            records: 0,
            bounds: None,
            heights: None,
            active: pages.checked_sub(1),
            _marker: PhantomData,
        };
        let mut zones = FileZones::default();
        for pg in 0..pages {
            let (recs, _) = read_page_records::<R>(pool, PageId::new(file, pg))?;
            hf.records += recs.len() as u64;
            for r in &recs {
                if let Some((lo, hi)) = r.bounds_hint() {
                    hf.bounds = Some(match hf.bounds {
                        None => (lo, hi),
                        Some((l0, h0)) => (l0.min(lo), h0.max(hi)),
                    });
                }
                if let Some(h) = r.height_hint() {
                    hf.heights = Some(match hf.heights {
                        None => (h, h),
                        Some((l0, h0)) => (l0.min(h), h0.max(h)),
                    });
                }
            }
            zones.push(exact_zone(&recs));
        }
        if zones.any() {
            pool.register_zones(file, zones);
        }
        Ok(hf)
    }

    /// Inserts one record through the write-ahead log: the byte writes
    /// (slot + page header, plus an `alloc` frame when the insert grows
    /// the file or recycles a free page) commit as one atomic [`WalOp`],
    /// and the page's zone map entry widens to keep covering its records.
    ///
    /// Incremental inserts always produce raw-layout slots; a packed
    /// (bulk-loaded, compressed) tail page is left sealed and the insert
    /// opens a new page instead. Recycled pages come from `wal`'s free
    /// list, lowest page first, and keep receiving inserts until full.
    pub fn insert_logged(&mut self, pool: &BufferPool, wal: &Wal, r: R) -> Result<(), PoolError> {
        let mut op = WalOp::new();
        // Find the slot: the active fill page if it still has raw space,
        // else a recycled free page, else a fresh page at the file's end.
        let mut target = None;
        if let Some(cand) = self.active.or_else(|| self.pages.checked_sub(1)) {
            let pid = PageId::new(self.file, cand);
            let page = pool.read_page(pid)?;
            if parse_packed_header(&page[..], pid)?.is_none() {
                let n = u32::from_le_bytes(page[..HEADER].try_into().unwrap()) as usize;
                // A zero count means the page was emptied and released:
                // it belongs to the free list now and must be re-acquired
                // through it (with a logged `alloc`), never written to
                // behind the list's back.
                if n > 0 && n < records_per_page::<R>() {
                    target = Some((cand, n));
                }
            }
        }
        let fresh = target.is_none();
        let (pageno, idx) = match target {
            Some(t) => t,
            None => {
                let pg = match wal.acquire_free_page(self.file) {
                    Some(pg) => pg,
                    None => pool.allocate_page(self.file)?,
                };
                op.alloc(PageId::new(self.file, pg));
                (pg, 0)
            }
        };
        let pid = PageId::new(self.file, pageno);
        let mut slot = vec![0u8; R::SIZE];
        r.write(&mut slot);
        op.page_write(pid, HEADER + idx * R::SIZE, &slot);
        op.page_write(pid, 0, &((idx + 1) as u32).to_le_bytes());
        wal.commit(pool, op)?;

        // In-memory catalog state follows only after the commit succeeded.
        self.pages = self.pages.max(pageno + 1);
        self.records += 1;
        self.active = Some(pageno);
        let bounds = r.bounds_hint();
        let height = r.height_hint();
        if let Some((lo, hi)) = bounds {
            self.bounds = Some(match self.bounds {
                None => (lo, hi),
                Some((l0, h0)) => (l0.min(lo), h0.max(hi)),
            });
        }
        if let Some(h) = height {
            self.heights = Some(match self.heights {
                None => (h, h),
                Some((l0, h0)) => (l0.min(h), h0.max(h)),
            });
        }
        self.rezone(pool, bounds.zip(height).is_some(), |zones| {
            match (bounds.zip(height), fresh) {
                // A fresh or recycled page holds exactly this record, so its
                // zone is set outright — widening would wrongly inherit the
                // `None` an emptied page leaves behind.
                (Some(((lo, hi), h)), true) => {
                    zones.set_page(pageno, Some(ZoneEntry::of(lo, hi, h)))
                }
                (Some(((lo, hi), h)), false) => zones.widen(pageno, lo, hi, h),
                (None, _) => zones.set_page(pageno, None),
            }
        });
        Ok(())
    }

    /// Deletes the first record equal to `r`, through the write-ahead
    /// log. Raw pages compact by moving their own last slot into the
    /// hole; packed pages decode, drop the record, and re-seal (removal
    /// always shrinks the encoding, so the re-sealed page fits). A page
    /// emptied by the delete is released to `wal`'s free list — it stays
    /// in the file with a zero record count until an insert recycles it.
    /// The page's zone map entry is recomputed exactly from the surviving
    /// records. Returns whether a record was found.
    pub fn delete_logged(&mut self, pool: &BufferPool, wal: &Wal, r: &R) -> Result<bool, PoolError>
    where
        R: PartialEq,
    {
        for pg in 0..self.pages {
            let pid = PageId::new(self.file, pg);
            let (mut recs, packed) = read_page_records::<R>(pool, pid)?;
            let Some(idx) = recs.iter().position(|x| x == r) else {
                continue;
            };
            let mut op = WalOp::new();
            let n = recs.len();
            if n == 1 {
                // The page empties: a zero raw header (which also clears
                // the packed flag) and a `free` frame.
                op.page_write(pid, 0, &0u32.to_le_bytes());
                op.free(pid);
            } else if packed {
                // Record order carries the delta encoding: removing record
                // `i` merges two deltas into their sum, whose zigzag varint
                // never outgrows the two it replaces (and the record's tag
                // and height bytes are freed besides) — so the re-sealed
                // page always fits. `swap_remove` would break that bound.
                recs.remove(idx);
                let mut img: Box<PageBuf> = Box::new([0u8; PAGE_SIZE]);
                let mut b = PackedPageBuilder::default();
                for rec in &recs {
                    let parts = rec
                        .to_parts()
                        .expect("records decoded from a packed page re-pack");
                    debug_assert!(b.fits(&parts), "removal never grows a packed page");
                    b.push(parts);
                }
                b.seal_into(&mut img[..]);
                op.page_image(pid, &img);
            } else {
                if idx != n - 1 {
                    let mut last = vec![0u8; R::SIZE];
                    recs[n - 1].write(&mut last);
                    op.page_write(pid, HEADER + idx * R::SIZE, &last);
                }
                recs.swap_remove(idx);
                op.page_write(pid, 0, &((n - 1) as u32).to_le_bytes());
            }
            wal.commit(pool, op)?;
            self.records -= 1;
            if n == 1 {
                recs.clear();
            }
            let exact = exact_zone(&recs);
            let had_hints = exact.is_some();
            self.rezone(pool, had_hints, |zones| zones.set_page(pg, exact));
            return Ok(true);
        }
        Ok(false)
    }

    /// Clones, edits and re-registers the file's zone map. When the file
    /// has no map and the triggering record carries no hints there is
    /// nothing to maintain and nothing is registered.
    fn rezone(&self, pool: &BufferPool, hints: bool, edit: impl FnOnce(&mut FileZones)) {
        let mut zones = match pool.file_zones(self.file) {
            Some(arc) => (*arc).clone(),
            None if hints => FileZones::default(),
            None => return,
        };
        edit(&mut zones);
        pool.register_zones(self.file, zones);
    }
}

/// Reads and fully decodes one heap page, reporting whether it used the
/// packed layout — the shared primitive of [`HeapFile::open`] and
/// [`HeapFile::delete_logged`].
fn read_page_records<R: FixedRecord>(
    pool: &BufferPool,
    pid: PageId,
) -> Result<(Vec<R>, bool), PoolError> {
    let page = pool.read_page(pid)?;
    match parse_packed_header(&page[..], pid)? {
        Some(hdr) => {
            let mut v = Vec::with_capacity(hdr.n);
            hdr.decode_each::<R>(&page[..], pid, |r| v.push(r))?;
            Ok((v, true))
        }
        None => {
            let n = u32::from_le_bytes(page[..HEADER].try_into().unwrap()) as usize;
            if n > records_per_page::<R>() {
                return Err(PoolError::Corrupt {
                    pid,
                    reason: "page header record count exceeds page capacity",
                });
            }
            let mut v = Vec::with_capacity(n);
            for i in 0..n {
                let off = HEADER + i * R::SIZE;
                let bytes = &page[off..off + R::SIZE];
                R::validate(bytes).map_err(|reason| PoolError::Corrupt { pid, reason })?;
                v.push(R::read(bytes));
            }
            Ok((v, false))
        }
    }
}

/// The exact zone of a page holding `recs`: a fold of every record's
/// hints, or `None` when the page is empty or any record lacks hints
/// (a page that must always be read).
fn exact_zone<R: FixedRecord>(recs: &[R]) -> Option<ZoneEntry> {
    let mut zone: Option<ZoneEntry> = None;
    for r in recs {
        let ((lo, hi), h) = r.bounds_hint().zip(r.height_hint())?;
        match &mut zone {
            None => zone = Some(ZoneEntry::of(lo, hi, h)),
            Some(z) => z.fold(lo, hi, h),
        }
    }
    zone
}

/// Append writer for a heap file. Buffers page images in its own memory
/// (no pool frames consumed) and appends them with vectored write-through,
/// coalescing up to the declared [`AccessPattern::WriteOnce`] batch depth
/// per disk-arm movement.
///
/// [`AccessPattern::WriteOnce`]: crate::access::AccessPattern::WriteOnce
pub struct HeapWriter<'a, R: FixedRecord> {
    pool: &'a BufferPool,
    file: FileId,
    pages: u32,
    records: u64,
    bounds: Option<(u64, u64)>,
    heights: Option<(u32, u32)>,
    /// Records buffered in the (unpinned-between-pushes) current page image.
    buf: Vec<u8>,
    in_buf: usize,
    /// Sealed page images awaiting one vectored append.
    pending: Vec<Box<PageBuf>>,
    /// Pages coalesced per append batch (the write-once depth).
    batch: usize,
    /// Zone of the page being filled; `None` once a record without hints
    /// lands on it (a page with a gap must never be skipped).
    page_zone: Option<ZoneEntry>,
    /// Whether the current page saw a record without zone hints.
    page_gap: bool,
    /// Per-page zones of the sealed pages, registered at `finish`.
    zones: FileZones,
    /// Packed-page encoder, engaged when the record type is packable and
    /// the writer's options enable compression. `None` writes the raw
    /// layout. Cleared for the rest of the file the first time a record
    /// yields no parts (mixed layouts within one file are fine — the page
    /// header selects the decode path).
    packer: Option<PackedPageBuilder>,
    _marker: PhantomData<R>,
}

impl<'a, R: FixedRecord> HeapWriter<'a, R> {
    /// Starts writing a brand-new heap file, batching appends at the
    /// default write-once depth; use [`create_with`](HeapWriter::create_with)
    /// to tune or disable batching.
    pub fn create(pool: &'a BufferPool) -> Result<Self, PoolError> {
        Self::create_with(pool, ScanOptions::default())
    }

    /// Starts writing a brand-new heap file with explicit [`ScanOptions`]
    /// (the write-once counterpart of the declared depth is used, so
    /// passing an operator's read options directly does the right thing).
    pub fn create_with(pool: &'a BufferPool, opts: ScanOptions) -> Result<Self, PoolError> {
        Ok(HeapWriter {
            pool,
            file: pool.create_file(),
            pages: 0,
            records: 0,
            bounds: None,
            heights: None,
            buf: vec![0u8; PAGE_SIZE],
            in_buf: 0,
            pending: Vec::new(),
            batch: opts.as_write().depth(),
            page_zone: None,
            page_gap: false,
            zones: FileZones::default(),
            packer: (R::PACKABLE && opts.compress).then(PackedPageBuilder::default),
            _marker: PhantomData,
        })
    }

    /// Appends one record.
    pub fn push(&mut self, r: R) -> Result<(), PoolError> {
        if let Some(parts) = self.packer.as_ref().and(r.to_parts()) {
            let full = !self
                .packer
                .as_ref()
                .expect("packer checked above")
                .fits(&parts);
            if full {
                self.spill()?;
            }
            self.packer
                .as_mut()
                .expect("packer survives spills")
                .push(parts);
            self.in_buf += 1;
            self.fold_stats(&r);
            return Ok(());
        }
        if self.packer.is_some() {
            // A record the codec cannot represent: seal what is buffered
            // and write raw from here on.
            self.spill()?;
            self.packer = None;
        }
        let cap = records_per_page::<R>();
        if self.in_buf == cap {
            self.spill()?;
        }
        let off = HEADER + self.in_buf * R::SIZE;
        r.write(&mut self.buf[off..off + R::SIZE]);
        self.in_buf += 1;
        self.fold_stats(&r);
        Ok(())
    }

    /// Folds one record's hints into the file and page statistics shared by
    /// both page layouts.
    fn fold_stats(&mut self, r: &R) {
        let bounds = r.bounds_hint();
        let height = r.height_hint();
        if let Some((lo, hi)) = bounds {
            self.bounds = Some(match self.bounds {
                None => (lo, hi),
                Some((l0, h0)) => (l0.min(lo), h0.max(hi)),
            });
        }
        if let Some(h) = height {
            self.heights = Some(match self.heights {
                None => (h, h),
                Some((l0, h0)) => (l0.min(h), h0.max(h)),
            });
        }
        match (bounds, height) {
            (Some((lo, hi)), Some(h)) if !self.page_gap => match &mut self.page_zone {
                None => self.page_zone = Some(ZoneEntry::of(lo, hi, h)),
                Some(z) => z.fold(lo, hi, h),
            },
            _ => {
                self.page_gap = true;
                self.page_zone = None;
            }
        }
        self.records += 1;
    }

    /// Number of records pushed so far.
    #[inline]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The id of the file being written. Lets callers (e.g. the external
    /// sort) register the file for cleanup before the writer finishes.
    #[inline]
    pub fn file_id(&self) -> FileId {
        self.file
    }

    fn spill(&mut self) -> Result<(), PoolError> {
        if self.in_buf == 0 {
            return Ok(());
        }
        match &mut self.packer {
            Some(packer) => {
                debug_assert_eq!(packer.len(), self.in_buf);
                let (n, used) = packer.seal_into(&mut self.buf);
                self.pool
                    .note_page_packed((n * R::SIZE) as u64, used as u64);
            }
            None => {
                self.buf[..HEADER].copy_from_slice(&(self.in_buf as u32).to_le_bytes());
            }
        }
        // Seal the page image; the actual write-through happens in batches
        // (bulk output bypasses the pool, see
        // `BufferPool::append_pages_through`).
        let mut img: Box<PageBuf> = Box::new([0u8; PAGE_SIZE]);
        img.copy_from_slice(&self.buf);
        self.pending.push(img);
        self.pages += 1;
        self.in_buf = 0;
        self.zones.push(self.page_zone.take());
        self.page_gap = false;
        if self.pending.len() >= self.batch {
            self.flush_pending()?;
        }
        Ok(())
    }

    fn flush_pending(&mut self) -> Result<(), PoolError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let bufs: Vec<&PageBuf> = self.pending.iter().map(|b| &**b).collect();
        self.pool.append_pages_through(self.file, &bufs)?;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the tail page, registers the file's zone map with the pool
    /// (when any page produced one) and returns the finished file handle.
    pub fn finish(mut self) -> Result<HeapFile<R>, PoolError> {
        self.spill()?;
        self.flush_pending()?;
        if self.zones.any() {
            self.pool
                .register_zones(self.file, std::mem::take(&mut self.zones));
        }
        Ok(HeapFile {
            file: self.file,
            pages: self.pages,
            records: self.records,
            bounds: self.bounds,
            heights: self.heights,
            active: None,
            _marker: PhantomData,
        })
    }
}

/// A resumable position inside a heap file, captured with
/// [`HeapScan::position`] *before* reading the record it should resume at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanPos {
    page: u32,
    idx: usize,
}

impl ScanPos {
    /// The beginning of the file.
    pub const START: ScanPos = ScanPos { page: 0, idx: 0 };

    /// An explicit position: record `idx` of page `page`. Batched readers
    /// ([`HeapScan::next_batch`] consumers) that track page-aligned batches
    /// use this to mark records inside a batch for later rescans.
    pub fn at(page: u32, idx: usize) -> ScanPos {
        ScanPos { page, idx }
    }

    /// The page this position points into.
    #[inline]
    pub fn page(&self) -> u32 {
        self.page
    }

    /// The record index within the page.
    #[inline]
    pub fn idx(&self) -> usize {
        self.idx
    }
}

/// Sequential scanner over a heap file. See [`HeapFile::scan`].
///
/// When its [`ScanOptions`] carry a [`crate::zone::ScanFilter`], the scan prunes at two
/// granularities: whole pages whose zone map entry cannot satisfy the
/// filter are skipped *before* they are fetched (zero I/O, counted as
/// `pages_skipped`), and admitted pages drop individual non-qualifying
/// records after decode (counted as `records_filtered`). Filters are
/// necessary conditions, so a filtered scan returns exactly the records a
/// full scan would that satisfy the predicate.
pub struct HeapScan<'a, R: FixedRecord> {
    pool: &'a BufferPool,
    file: FileId,
    pages: u32,
    next_page: u32,
    cur: Option<PageRef<'a>>,
    idx: usize,
    /// Intra-page offset to apply when the first page loads (scan_at).
    skip_on_load: usize,
    in_page: usize,
    /// Declared access pattern, forwarded to the pool on every page fetch.
    opts: ScanOptions,
    /// Zone map of the file, when the scan is filtered and one exists.
    zones: Option<Arc<FileZones>>,
    /// Records dropped by the record-level filter since the last flush to
    /// the pool counter (flushed per page, at EOF, and on drop).
    pending_filtered: u64,
    /// Verified header of the current page when it is packed
    /// ([`crate::codec`]); `None` for raw pages.
    packed: Option<PackedHeader>,
    /// Per-page decode cache for record-at-a-time access to packed pages:
    /// the page decodes once into this buffer and `next_record` serves
    /// from it, so `idx`/[`ScanPos`] keep indexing decoded records exactly
    /// as they index raw slots. Batched access streams the decode instead
    /// and never touches the cache.
    cache: Vec<R>,
    /// Whether `cache` holds the current page's decoded records.
    cache_valid: bool,
    _marker: PhantomData<R>,
}

impl<'a, R: FixedRecord> HeapScan<'a, R> {
    /// The position of the *next* record this scan would return; feed it
    /// to [`HeapFile::scan_at`] to resume here later.
    pub fn position(&self) -> ScanPos {
        match &self.cur {
            Some(_) => ScanPos {
                page: self.next_page - 1,
                idx: self.idx,
            },
            None => ScanPos {
                page: self.next_page,
                idx: self.skip_on_load,
            },
        }
    }

    /// Consumes the scan into an iterator of `Result` items, for feeding
    /// streaming consumers (e.g. index bulk loads) that must propagate
    /// I/O faults instead of panicking like the plain [`Iterator`] impl.
    pub fn results(mut self) -> impl Iterator<Item = Result<R, PoolError>> + 'a
    where
        R: 'a,
    {
        std::iter::from_fn(move || self.next_record().transpose())
    }

    /// Returns the next record, or `None` at end of file.
    ///
    /// Page contents are validated as they stream by — a header record
    /// count beyond page capacity, malformed packed bytes, or a record
    /// [`FixedRecord::validate`] rejects surface as [`PoolError::Corrupt`]
    /// naming the page, instead of a slice panic or silently decoded
    /// garbage. Packed pages decode once into a per-page cache and are
    /// served from it, so positions and resume offsets index decoded
    /// records on either layout.
    pub fn next_record(&mut self) -> Result<Option<R>, PoolError> {
        let filtering = !self.opts.filter.is_all();
        loop {
            if self.cur.is_some() {
                if self.packed.is_some() && !self.cache_valid {
                    self.fill_cache()?;
                }
                let page = self.cur.as_ref().expect("page pinned");
                while self.idx < self.in_page {
                    let r = if self.packed.is_some() {
                        self.cache[self.idx]
                    } else {
                        let off = HEADER + self.idx * R::SIZE;
                        let bytes = &page[off..off + R::SIZE];
                        R::validate(bytes).map_err(|reason| PoolError::Corrupt {
                            pid: PageId::new(self.file, self.next_page - 1),
                            reason,
                        })?;
                        R::read(bytes)
                    };
                    self.idx += 1;
                    if filtering
                        && !self
                            .opts
                            .filter
                            .admits_record(r.bounds_hint(), r.height_hint())
                    {
                        self.pending_filtered += 1;
                        continue;
                    }
                    return Ok(Some(r));
                }
                // Release the pin *before* looking at the next page's zone:
                // skipped ranges are crossed with no page held.
                self.cur = None;
                self.flush_filtered();
            }
            if !self.load_next_page()? {
                return Ok(None);
            }
        }
    }

    /// Decodes the current packed page into the per-page cache (exactly
    /// once per page), counting one packed decode.
    fn fill_cache(&mut self) -> Result<(), PoolError> {
        let hdr = self.packed.expect("packed page");
        let page = self.cur.as_ref().expect("page pinned");
        let pid = PageId::new(self.file, self.next_page - 1);
        self.cache.clear();
        let cache = &mut self.cache;
        hdr.decode_each::<R>(&page[..], pid, |r| cache.push(r))?;
        self.pool.note_packed_decode();
        self.cache_valid = true;
        Ok(())
    }

    /// Decodes the remainder of the current page (loading and zone-skipping
    /// pages as needed) into `out` in one pass, returning the number of
    /// records appended — `0` only at end of file. The page is unpinned
    /// before this returns, so batch consumers never hold pins between
    /// calls. Respects the scan's filter like [`next_record`].
    ///
    /// The batch is page-aligned: together with [`HeapScan::position`]
    /// (which after a batch points at the first record of the *next* page)
    /// and [`ScanPos::at`], callers can mark any record inside the batch
    /// for a later rescan.
    ///
    /// [`next_record`]: HeapScan::next_record
    pub fn next_batch(&mut self, out: &mut Vec<R>) -> Result<usize, PoolError> {
        self.next_batch_each(|r| out.push(r))
    }

    /// Visitor form of [`next_batch`](HeapScan::next_batch): streams the
    /// remainder of the current page through `f` and returns how many
    /// records it saw (`0` only at end of file). Packed pages decode
    /// **directly into the visitor** — columnar consumers split each record
    /// into their own SoA columns with no intermediate record vector.
    pub fn next_batch_each(&mut self, mut f: impl FnMut(R)) -> Result<usize, PoolError> {
        let filtering = !self.opts.filter.is_all();
        let mut emitted = 0usize;
        loop {
            if self.cur.is_none() && !self.load_next_page()? {
                return Ok(0);
            }
            let page = self.cur.as_ref().expect("page loaded");
            let pid = PageId::new(self.file, self.next_page - 1);
            if let Some(hdr) = self.packed {
                if self.cache_valid {
                    // `next_record` already decoded this page: serve the
                    // cache rather than decoding twice.
                    for &r in &self.cache[self.idx..self.in_page] {
                        if filtering
                            && !self
                                .opts
                                .filter
                                .admits_record(r.bounds_hint(), r.height_hint())
                        {
                            self.pending_filtered += 1;
                            continue;
                        }
                        f(r);
                        emitted += 1;
                    }
                } else {
                    let skip = self.idx;
                    let pending = &mut self.pending_filtered;
                    let opts = &self.opts;
                    let mut seen = 0usize;
                    hdr.decode_each::<R>(&page[..], pid, |r| {
                        seen += 1;
                        if seen <= skip {
                            return;
                        }
                        if filtering && !opts.filter.admits_record(r.bounds_hint(), r.height_hint())
                        {
                            *pending += 1;
                            return;
                        }
                        f(r);
                        emitted += 1;
                    })?;
                    self.pool.note_packed_decode();
                }
                self.idx = self.in_page;
            } else {
                while self.idx < self.in_page {
                    let off = HEADER + self.idx * R::SIZE;
                    let bytes = &page[off..off + R::SIZE];
                    R::validate(bytes).map_err(|reason| PoolError::Corrupt { pid, reason })?;
                    let r = R::read(bytes);
                    self.idx += 1;
                    if filtering
                        && !self
                            .opts
                            .filter
                            .admits_record(r.bounds_hint(), r.height_hint())
                    {
                        self.pending_filtered += 1;
                        continue;
                    }
                    f(r);
                    emitted += 1;
                }
            }
            self.cur = None;
            self.flush_filtered();
            if emitted > 0 {
                return Ok(emitted);
            }
            // Every record of the page was filtered out: move on.
        }
    }

    /// Loads the next page the filter's zone check admits; returns `false`
    /// at end of file. `self.cur` must be `None` on entry (no pin is held
    /// while pages are being skipped).
    fn load_next_page(&mut self) -> Result<bool, PoolError> {
        debug_assert!(self.cur.is_none(), "pin held across page loads");
        if let Some(zones) = &self.zones {
            let mut skipped = 0u64;
            while self.next_page < self.pages {
                match zones.page(self.next_page) {
                    Some(z) if !self.opts.filter.admits_zone(z) => {
                        self.next_page += 1;
                        // A resume offset only applies to the exact page it
                        // was captured on; skipping that page consumes it.
                        self.skip_on_load = 0;
                        skipped += 1;
                    }
                    _ => break,
                }
            }
            if skipped > 0 {
                self.pool.note_pages_skipped(skipped);
            }
        }
        if self.next_page == self.pages {
            self.flush_filtered();
            return Ok(false);
        }
        let pid = PageId::new(self.file, self.next_page);
        let page = self.pool.read_page_with(pid, self.opts)?;
        self.next_page += 1;
        // The page header selects the layout: a verified packed header, or
        // the raw record count (whose capacity bound only applies to the
        // raw layout — packed pages legitimately hold more records than
        // `PAGE_SIZE / R::SIZE`).
        self.packed = parse_packed_header(&page[..], pid)?;
        self.cache_valid = false;
        match &self.packed {
            Some(hdr) => self.in_page = hdr.n,
            None => {
                let in_page = u32::from_le_bytes(page[..HEADER].try_into().unwrap()) as usize;
                if in_page > records_per_page::<R>() {
                    return Err(PoolError::Corrupt {
                        pid,
                        reason: "page header record count exceeds page capacity",
                    });
                }
                self.in_page = in_page;
            }
        }
        self.idx = self.skip_on_load;
        self.skip_on_load = 0;
        self.cur = Some(page);
        Ok(true)
    }

    /// Credits locally accumulated filtered-record counts to the pool.
    /// Batched per page so the hot loop performs no atomic traffic.
    fn flush_filtered(&mut self) {
        if self.pending_filtered > 0 {
            self.pool.note_records_filtered(self.pending_filtered);
            self.pending_filtered = 0;
        }
    }
}

impl<R: FixedRecord> Drop for HeapScan<'_, R> {
    /// A short-circuited scan still reports the records it filtered.
    fn drop(&mut self) {
        self.flush_filtered();
    }
}

impl<R: FixedRecord> Iterator for HeapScan<'_, R> {
    type Item = R;

    /// Iterator convenience that panics on any pool error — frame
    /// exhaustion or a device fault. Code that must survive injected I/O
    /// faults (everything the fault-sweep harness exercises) uses the
    /// fallible [`HeapScan::next_record`] instead.
    fn next(&mut self) -> Option<R> {
        self.next_record()
            .unwrap_or_else(|e| panic!("heap scan failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use crate::zone::ScanFilter;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Disk::in_memory_free(), frames)
    }

    #[test]
    fn write_scan_round_trip() {
        let p = pool(4);
        let data: Vec<u64> = (0..10_000).map(|i| i * 3 + 1).collect();
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        assert_eq!(hf.records(), 10_000);
        let expect_pages = 10_000usize.div_ceil(records_per_page::<u64>());
        assert_eq!(hf.pages() as usize, expect_pages);
        let back: Vec<u64> = hf.scan(&p).collect();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_file() {
        let p = pool(2);
        let hf = HeapFile::<u64>::from_iter(&p, std::iter::empty()).unwrap();
        assert!(hf.is_empty());
        assert_eq!(hf.pages(), 0);
        assert_eq!(hf.scan(&p).count(), 0);
    }

    #[test]
    fn pair_records() {
        let p = pool(4);
        let data: Vec<(u64, u64)> = (0..1000).map(|i| (i, i * i)).collect();
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let back: Vec<(u64, u64)> = hf.scan(&p).collect();
        assert_eq!(back, data);
    }

    #[test]
    fn scan_io_equals_page_count() {
        let p = pool(2); // smaller than the file: every page is a real read
        let data: Vec<u64> = (0..5000).collect();
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        p.flush_all().unwrap();
        // Evict everything by scanning a second file of the same size.
        let other = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        p.flush_all().unwrap();
        let _ = other.read_all(&p).unwrap();
        let before = p.io_stats();
        let n = hf.scan(&p).count();
        assert_eq!(n, 5000);
        let delta = p.io_stats().since(&before);
        assert_eq!(delta.reads(), hf.pages() as u64);
        // A pure scan is perfectly sequential except the first page.
        assert_eq!(delta.rand_reads, 1);
    }

    #[test]
    fn writer_batches_appends() {
        let p = pool(2);
        let n = records_per_page::<u64>() * 3 + 1; // 4 pages
        let hf = HeapFile::from_iter(&p, 0..n as u64).unwrap();
        assert_eq!(hf.pages(), 4);
        // All four pages went out in one vectored append: one seek, three
        // sequential transfers.
        let d = p.io_stats();
        assert_eq!(d.writes(), 4);
        assert_eq!((d.rand_writes, d.seq_writes), (1, 3));
        let back: Vec<u64> = hf.scan(&p).collect();
        assert_eq!(back.len(), n);
    }

    #[test]
    fn random_scan_disables_read_ahead() {
        let p = pool(8);
        let hf = HeapFile::from_iter(&p, 0..5000u64).unwrap();
        p.evict_all().unwrap();
        let mut s = hf.scan_with(&p, ScanOptions::random());
        s.next_record().unwrap().unwrap();
        assert_eq!(p.io_stats().reads(), 1);
        assert_eq!(p.prefetched(), 0);
    }

    #[test]
    fn partial_last_page_preserved() {
        let p = pool(2);
        let n = records_per_page::<u64>() + 3; // one full page + 3
        let hf = HeapFile::from_iter(&p, 0..n as u64).unwrap();
        assert_eq!(hf.pages(), 2);
        assert_eq!(hf.scan(&p).count(), n);
    }

    #[test]
    fn drop_file_releases_pages() {
        let p = pool(2);
        let hf = HeapFile::from_iter(&p, 0..1000u64).unwrap();
        let fid = hf.file_id();
        hf.drop_file(&p);
        assert_eq!(p.num_pages(fid), 0);
    }

    #[test]
    fn scan_position_round_trip() {
        let p = pool(4);
        let data: Vec<u64> = (0..2000).collect();
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let mut s = hf.scan(&p);
        // Consume 700 records, capture, consume the rest.
        for _ in 0..700 {
            s.next_record().unwrap().unwrap();
        }
        let pos = s.position();
        let rest: Vec<u64> = std::iter::from_fn(|| s.next_record().unwrap()).collect();
        assert_eq!(rest, data[700..]);
        // Resume from the captured position.
        let mut s2 = hf.scan_at(&p, pos);
        let resumed: Vec<u64> = std::iter::from_fn(|| s2.next_record().unwrap()).collect();
        assert_eq!(resumed, data[700..]);
        // Position at page boundaries round-trips too.
        let mut s3 = hf.scan(&p);
        let per_page = records_per_page::<u64>();
        for _ in 0..per_page {
            s3.next_record().unwrap().unwrap();
        }
        let pos = s3.position();
        let mut s4 = hf.scan_at(&p, pos);
        assert_eq!(s4.next_record().unwrap(), Some(per_page as u64));
        // START equals a plain scan.
        let mut s5 = hf.scan_at(&p, ScanPos::START);
        assert_eq!(s5.next_record().unwrap(), Some(0));
    }

    #[test]
    fn corrupt_header_count_surfaces_as_error() {
        let p = pool(4);
        let hf = HeapFile::from_iter(&p, 0..1000u64).unwrap();
        let pid = PageId::new(hf.file_id(), 1);
        {
            let mut page = p.write_page(pid).unwrap();
            // A count beyond page capacity would index past the page.
            page[..HEADER].copy_from_slice(&u32::MAX.to_le_bytes());
        }
        let mut s = hf.scan(&p);
        let err = loop {
            match s.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("corruption not detected"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.failing_page(), Some(pid));
        assert!(matches!(err, PoolError::Corrupt { .. }));
    }

    /// A record type that rejects a zero payload, exercising
    /// [`FixedRecord::validate`].
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct NonZero(u64);

    impl FixedRecord for NonZero {
        const SIZE: usize = 8;
        fn write(&self, out: &mut [u8]) {
            self.0.write(out);
        }
        fn read(buf: &[u8]) -> Self {
            NonZero(u64::read(buf))
        }
        fn validate(buf: &[u8]) -> Result<(), &'static str> {
            if u64::read(buf) == 0 {
                Err("zero payload")
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn corrupt_record_surfaces_as_error() {
        let p = pool(4);
        let hf = HeapFile::from_iter(&p, (1..=1000u64).map(NonZero)).unwrap();
        let pid = PageId::new(hf.file_id(), 0);
        {
            let mut page = p.write_page(pid).unwrap();
            // Zero one record in the middle of page 0.
            let off = HEADER + 5 * 8;
            page[off..off + 8].fill(0);
        }
        let mut s = hf.scan(&p);
        for _ in 0..5 {
            s.next_record().unwrap().unwrap();
        }
        let err = s.next_record().unwrap_err();
        assert_eq!(
            err,
            PoolError::Corrupt {
                pid,
                reason: "zero payload"
            }
        );
    }

    #[test]
    fn writer_uses_bounded_frames() {
        // A writer holds no pinned page between pushes: with a 1-frame pool
        // a full write-out still succeeds.
        let p = pool(1);
        let hf = HeapFile::from_iter(&p, 0..50_000u64).unwrap();
        assert_eq!(hf.records(), 50_000);
    }

    /// A record spanning an interval at a height — the minimal zone-mapped
    /// record type.
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Span {
        lo: u64,
        hi: u64,
        h: u32,
    }

    impl FixedRecord for Span {
        const SIZE: usize = 20;
        fn write(&self, out: &mut [u8]) {
            out[..8].copy_from_slice(&self.lo.to_le_bytes());
            out[8..16].copy_from_slice(&self.hi.to_le_bytes());
            out[16..20].copy_from_slice(&self.h.to_le_bytes());
        }
        fn read(buf: &[u8]) -> Self {
            Span {
                lo: u64::from_le_bytes(buf[..8].try_into().unwrap()),
                hi: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
                h: u32::from_le_bytes(buf[16..20].try_into().unwrap()),
            }
        }
        fn bounds_hint(&self) -> Option<(u64, u64)> {
            Some((self.lo, self.hi))
        }
        fn height_hint(&self) -> Option<u32> {
            Some(self.h)
        }
    }

    /// `n` spans laid out in key order: record `i` covers `[10i, 10i+5]`
    /// at height `i % 4`, so consecutive pages hold disjoint key windows —
    /// the best case for zone pruning.
    fn spans(n: u64) -> Vec<Span> {
        (0..n)
            .map(|i| Span {
                lo: 10 * i,
                hi: 10 * i + 5,
                h: (i % 4) as u32,
            })
            .collect()
    }

    #[test]
    fn writer_registers_zone_map() {
        let p = pool(4);
        let data = spans(2000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        assert_eq!(hf.bounds(), Some((0, 10 * 1999 + 5)));
        assert_eq!(hf.height_bounds(), Some((0, 3)));
        let z = hf.zone().unwrap();
        assert_eq!((z.lo, z.hi, z.min_h, z.max_h), (0, 19_995, 0, 3));
        let zones = p.file_zones(hf.file_id()).unwrap();
        assert_eq!(zones.len(), hf.pages() as usize);
        // Every page's entry covers exactly its records.
        let per = records_per_page::<Span>() as u64;
        let z0 = zones.page(0).unwrap();
        assert_eq!((z0.lo, z0.hi), (0, 10 * (per - 1) + 5));
        assert_eq!((z0.min_h, z0.max_h), (0, 3));
    }

    #[test]
    fn hintless_records_register_no_zones() {
        let p = pool(4);
        let hf = HeapFile::from_iter(&p, 0..5000u64).unwrap();
        assert!(p.file_zones(hf.file_id()).is_none());
        assert_eq!(hf.zone(), None);
    }

    #[test]
    fn filtered_scan_skips_pages_at_zero_io() {
        let p = pool(4);
        let data = spans(5000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        p.evict_all().unwrap();
        let io0 = p.io_stats();
        let s0 = p.pool_stats();
        // A window covering records 1000..=1200 only.
        let filter = ScanFilter::RegionOverlap {
            start: 10_000,
            end: 12_005,
        };
        // Read-ahead off, so the read/skip tiling below is exact (prefetch
        // would fetch past the admitted window).
        let mut scan = hf.scan_with(&p, ScanOptions::sequential(1).with_filter(filter));
        let mut got = Vec::new();
        while let Some(r) = scan.next_record().unwrap() {
            got.push(r);
        }
        drop(scan);
        let expect: Vec<Span> = data
            .iter()
            .copied()
            .filter(|r| r.lo <= 12_005 && r.hi >= 10_000)
            .collect();
        assert_eq!(got, expect);
        let ds = p.pool_stats().since(&s0);
        let dio = p.io_stats().since(&io0);
        assert!(ds.pages_skipped > 0, "zone map pruned nothing");
        // Skipped pages cost zero I/O: reads + skips tile the file exactly.
        assert_eq!(dio.reads() + ds.pages_skipped, hf.pages() as u64);
        assert!(dio.reads() < hf.pages() as u64);
        // Loaded pages at the window edges hold non-qualifying records,
        // which the record-level filter dropped and counted.
        let loaded = hf.pages() as u64 - ds.pages_skipped;
        let decoded = loaded * records_per_page::<Span>() as u64;
        assert_eq!(ds.records_filtered, decoded.min(5000) - got.len() as u64);
        // The request identity is untouched by skips.
        assert_eq!(ds.hits + ds.misses, ds.requests());
    }

    #[test]
    fn filtered_scan_equals_unfiltered_postfilter() {
        let p = pool(4);
        let data = spans(3000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        for filter in [
            ScanFilter::HeightRange { min: 2, max: 3 },
            ScanFilter::RegionOverlap { start: 0, end: 40 },
            ScanFilter::RegionAndHeight {
                start: 5_000,
                end: 9_999,
                min: 1,
                max: 2,
            },
            // An empty window admits nothing anywhere.
            ScanFilter::RegionOverlap {
                start: 1_000_000,
                end: 2_000_000,
            },
        ] {
            let got = hf
                .read_all_with(&p, ScanOptions::default().with_filter(filter))
                .unwrap();
            let expect: Vec<Span> = data
                .iter()
                .copied()
                .filter(|r| filter.admits_record(r.bounds_hint(), r.height_hint()))
                .collect();
            assert_eq!(got, expect, "filter {filter:?}");
        }
    }

    /// A span whose hints can be switched off, for poisoning pages.
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct MaybeSpan(Span, bool);

    impl FixedRecord for MaybeSpan {
        const SIZE: usize = 21;
        fn write(&self, out: &mut [u8]) {
            self.0.write(&mut out[..20]);
            out[20] = self.1 as u8;
        }
        fn read(buf: &[u8]) -> Self {
            MaybeSpan(Span::read(&buf[..20]), buf[20] != 0)
        }
        fn bounds_hint(&self) -> Option<(u64, u64)> {
            self.1.then_some((self.0.lo, self.0.hi))
        }
        fn height_hint(&self) -> Option<u32> {
            self.1.then_some(self.0.h)
        }
    }

    #[test]
    fn hintless_record_poisons_its_page_only() {
        let p = pool(4);
        let per = records_per_page::<MaybeSpan>() as u64;
        // Three pages; one hint-less record lands on page 1.
        let data: Vec<MaybeSpan> = spans(3 * per)
            .into_iter()
            .enumerate()
            .map(|(i, s)| MaybeSpan(s, i as u64 != per + 3))
            .collect();
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let zones = p.file_zones(hf.file_id()).unwrap();
        assert!(zones.page(0).is_some());
        assert!(zones.page(1).is_none(), "poisoned page kept a zone");
        assert!(zones.page(2).is_some());
        // A filter matching nothing still reads the poisoned page — and a
        // hint-less record is admitted by every filter.
        let s0 = p.pool_stats();
        let got = hf
            .read_all_with(
                &p,
                ScanOptions::default().with_filter(ScanFilter::RegionOverlap {
                    start: u64::MAX - 1,
                    end: u64::MAX,
                }),
            )
            .unwrap();
        assert_eq!(got, vec![data[per as usize + 3]]);
        assert_eq!(p.pool_stats().since(&s0).pages_skipped, 2);
    }

    #[test]
    fn filtered_scan_holds_no_pin_across_skips() {
        // Satellite audit: the scan must release its page before crossing a
        // skipped range, so a 1-frame pool can serve a pruning scan while
        // the zone check runs — and no pin outlives the scan.
        let p = pool(1);
        let data = spans(5000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let filter = ScanFilter::HeightRange { min: 5, max: 9 }; // matches nothing
        let mut scan = hf.scan_with(&p, ScanOptions::default().with_filter(filter));
        assert_eq!(scan.next_record().unwrap(), None);
        assert_eq!(p.pinned_frames(), 0, "pin held at EOF");
        drop(scan);
        assert_eq!(p.pinned_frames(), 0);
        // Early termination mid-page: pin released once the scan is dropped,
        // and the records it filtered are still credited to the pool.
        let s0 = p.pool_stats();
        let mut scan = hf.scan_with(
            &p,
            ScanOptions::default().with_filter(ScanFilter::RegionOverlap {
                start: 0,
                end: u64::MAX,
            }),
        );
        scan.next_record().unwrap().unwrap();
        drop(scan);
        assert_eq!(p.pinned_frames(), 0, "pin survived scan drop");
        assert_eq!(p.pool_stats().since(&s0).records_filtered, 0);
    }

    #[test]
    fn batch_decode_matches_record_at_a_time() {
        let p = pool(4);
        let data = spans(3000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        for filter in [
            ScanFilter::All,
            ScanFilter::RegionOverlap {
                start: 7_000,
                end: 21_000,
            },
        ] {
            let opts = ScanOptions::default().with_filter(filter);
            let expect = hf.read_all_with(&p, opts).unwrap();
            let mut scan = hf.scan_with(&p, opts);
            let mut got = Vec::new();
            let mut batches = 0;
            loop {
                let n = scan.next_batch(&mut got).unwrap();
                if n == 0 {
                    break;
                }
                batches += 1;
                // The batch left no page pinned behind it.
                assert_eq!(p.pinned_frames(), 0);
            }
            assert_eq!(got, expect, "filter {filter:?}");
            assert!(batches > 1);
        }
    }

    #[test]
    fn batch_resumes_from_position() {
        let p = pool(4);
        let data = spans(2000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let mut s = hf.scan(&p);
        let mut first = Vec::new();
        s.next_batch(&mut first).unwrap();
        // After a batch the position is the start of the next page.
        let pos = s.position();
        assert_eq!(pos, ScanPos::at(1, 0));
        assert_eq!(pos.page(), 1);
        assert_eq!(pos.idx(), 0);
        let rest = {
            let mut s2 = hf.scan_at(&p, pos);
            let mut out = Vec::new();
            while s2.next_batch(&mut out).unwrap() > 0 {}
            out
        };
        assert_eq!(first.len() + rest.len(), data.len());
        assert_eq!(rest[..], data[first.len()..]);
    }

    /// A packable span: `(start, height, tag)` parts plus zone hints — the
    /// storage-level stand-in for a PBiTree element.
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct PSpan {
        start: u64,
        h: u32,
        tag: u32,
    }

    impl FixedRecord for PSpan {
        const SIZE: usize = 16;
        const PACKABLE: bool = true;
        fn write(&self, out: &mut [u8]) {
            out[..8].copy_from_slice(&self.start.to_le_bytes());
            out[8..12].copy_from_slice(&self.h.to_le_bytes());
            out[12..16].copy_from_slice(&self.tag.to_le_bytes());
        }
        fn read(buf: &[u8]) -> Self {
            PSpan {
                start: u64::from_le_bytes(buf[..8].try_into().unwrap()),
                h: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
                tag: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            }
        }
        fn bounds_hint(&self) -> Option<(u64, u64)> {
            Some((self.start, self.start + u64::from(self.h)))
        }
        fn height_hint(&self) -> Option<u32> {
            Some(self.h)
        }
        fn to_parts(&self) -> Option<crate::record::RecordParts> {
            (self.h <= 63).then_some(crate::record::RecordParts {
                start: self.start,
                height: self.h,
                tag: self.tag,
            })
        }
        fn from_parts(p: crate::record::RecordParts) -> Result<Self, &'static str> {
            if p.height > 63 {
                return Err("span height out of packed range");
            }
            Ok(PSpan {
                start: p.start,
                h: p.height,
                tag: p.tag,
            })
        }
    }

    fn pspans(n: u64) -> Vec<PSpan> {
        (0..n)
            .map(|i| PSpan {
                start: 10 * i,
                h: (i % 4) as u32,
                tag: (i % 7) as u32,
            })
            .collect()
    }

    fn compressed() -> ScanOptions {
        ScanOptions::default().with_compress(true)
    }

    #[test]
    fn packed_round_trip_shrinks_file() {
        let p = pool(4);
        let data = pspans(10_000);
        let raw = HeapFile::from_iter_with(
            &p,
            ScanOptions::default().with_compress(false),
            data.iter().copied(),
        )
        .unwrap();
        let s0 = p.pool_stats();
        let packed = HeapFile::from_iter_with(&p, compressed(), data.iter().copied()).unwrap();
        let ds = p.pool_stats().since(&s0);
        assert!(
            packed.pages() < raw.pages() / 2,
            "packing saved too little: {} vs {} pages",
            packed.pages(),
            raw.pages()
        );
        assert_eq!(ds.pages_packed, packed.pages() as u64);
        assert_eq!(ds.packed_pre_bytes, data.len() as u64 * PSpan::SIZE as u64);
        assert!(ds.packed_post_bytes < ds.packed_pre_bytes / 2);
        // Identical records back, on both layouts and read paths.
        assert_eq!(packed.read_all(&p).unwrap(), data);
        assert_eq!(raw.read_all(&p).unwrap(), data);
        let ds = p.pool_stats();
        assert!(ds.packed_decodes >= packed.pages() as u64);
    }

    #[test]
    fn compression_off_writes_raw_pages() {
        let p = pool(4);
        let s0 = p.pool_stats();
        let hf = HeapFile::from_iter_with(
            &p,
            ScanOptions::default().with_compress(false),
            pspans(1000),
        )
        .unwrap();
        assert_eq!(p.pool_stats().since(&s0).pages_packed, 0);
        assert_eq!(
            hf.pages() as usize,
            1000usize.div_ceil(records_per_page::<PSpan>())
        );
    }

    #[test]
    fn packed_resume_beyond_raw_capacity() {
        // Satellite audit: a packed page holds more records than
        // `PAGE_SIZE / R::SIZE`, so `ScanPos` offsets past the raw capacity
        // must stay valid on every resume path.
        let p = pool(4);
        let data = pspans(12_000);
        let hf = HeapFile::from_iter_with(&p, compressed(), data.iter().copied()).unwrap();
        let per_raw = records_per_page::<PSpan>();
        let mut s = hf.scan(&p);
        // Walk well past the raw per-page capacity while staying on page 0.
        let consumed = per_raw + per_raw / 2;
        for _ in 0..consumed {
            s.next_record().unwrap().unwrap();
        }
        let pos = s.position();
        assert_eq!(pos.page(), 0, "page 0 should outlast raw capacity");
        assert!(pos.idx() > per_raw);
        let mut resumed = hf.scan_at(&p, pos);
        let rest: Vec<PSpan> = std::iter::from_fn(|| resumed.next_record().unwrap()).collect();
        assert_eq!(rest, data[consumed..]);
        // read_all_with under explicit options agrees with the scan.
        assert_eq!(
            hf.read_all_with(&p, ScanOptions::sequential(1)).unwrap(),
            data
        );
    }

    #[test]
    fn packed_batch_matches_record_at_a_time() {
        let p = pool(4);
        let data = pspans(8_000);
        let hf = HeapFile::from_iter_with(&p, compressed(), data.iter().copied()).unwrap();
        for filter in [
            ScanFilter::All,
            ScanFilter::RegionOverlap {
                start: 7_000,
                end: 21_000,
            },
            ScanFilter::HeightRange { min: 2, max: 3 },
        ] {
            let opts = ScanOptions::default().with_filter(filter);
            let expect = hf.read_all_with(&p, opts).unwrap();
            let mut scan = hf.scan_with(&p, opts);
            let mut got = Vec::new();
            while scan.next_batch(&mut got).unwrap() > 0 {
                assert_eq!(p.pinned_frames(), 0);
            }
            assert_eq!(got, expect, "filter {filter:?}");
            // Visitor form sees the identical stream.
            let mut scan = hf.scan_with(&p, opts);
            let mut visited = Vec::new();
            while scan.next_batch_each(|r| visited.push(r)).unwrap() > 0 {}
            assert_eq!(visited, expect, "filter {filter:?}");
        }
    }

    #[test]
    fn packed_pages_keep_zone_tiling() {
        let p = pool(4);
        let data = pspans(20_000);
        let hf = HeapFile::from_iter_with(&p, compressed(), data.iter().copied()).unwrap();
        p.evict_all().unwrap();
        let io0 = p.io_stats();
        let s0 = p.pool_stats();
        let filter = ScanFilter::RegionOverlap {
            start: 100_000,
            end: 120_000,
        };
        let got = hf
            .read_all_with(&p, ScanOptions::sequential(1).with_filter(filter))
            .unwrap();
        let expect: Vec<PSpan> = data
            .iter()
            .copied()
            .filter(|r| filter.admits_record(r.bounds_hint(), r.height_hint()))
            .collect();
        assert_eq!(got, expect);
        let ds = p.pool_stats().since(&s0);
        let dio = p.io_stats().since(&io0);
        assert!(
            ds.pages_skipped > 0,
            "zone map pruned nothing on packed pages"
        );
        assert_eq!(dio.reads() + ds.pages_skipped, hf.pages() as u64);
    }

    #[test]
    fn unpackable_record_falls_back_to_raw_mid_file() {
        let p = pool(4);
        // Heights above 63 have no packed representation; the writer must
        // seal the packed prefix and continue raw, and the scan must read
        // both layouts back seamlessly.
        let mut data = pspans(2_000);
        data[1_000].h = 64;
        data[1_500].h = 200;
        let s0 = p.pool_stats();
        let hf = HeapFile::from_iter_with(&p, compressed(), data.iter().copied()).unwrap();
        let ds = p.pool_stats().since(&s0);
        assert!(ds.pages_packed >= 1, "prefix should have packed");
        assert!(
            (ds.pages_packed as u32) < hf.pages(),
            "fallback pages should be raw"
        );
        assert_eq!(hf.read_all(&p).unwrap(), data);
    }

    #[test]
    fn corrupt_packed_page_surfaces_as_error() {
        let p = pool(4);
        let data = pspans(5_000);
        let hf = HeapFile::from_iter_with(&p, compressed(), data.iter().copied()).unwrap();
        assert!(hf.pages() >= 3);
        let pid = PageId::new(hf.file_id(), 1);
        {
            let mut page = p.write_page(pid).unwrap();
            // Torn write: the tail of the page never hit the disk.
            page[PAGE_SIZE / 2..].fill(0);
        }
        let mut s = hf.scan(&p);
        let err = loop {
            match s.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("packed corruption not detected"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.failing_page(), Some(pid));
        assert!(matches!(err, PoolError::Corrupt { .. }));
        // The batched path refuses it identically.
        let mut s = hf.scan(&p);
        let mut sink = Vec::new();
        let err = loop {
            match s.next_batch(&mut sink) {
                Ok(0) => panic!("packed corruption not detected by batch"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.failing_page(), Some(pid));
    }

    #[test]
    fn packed_page_in_unpackable_file_is_corrupt() {
        // A packed header appearing in a file of records that cannot decode
        // parts (e.g. plain u64) is corruption, never garbage records.
        let p = pool(4);
        let hf = HeapFile::from_iter(&p, 0..2000u64).unwrap();
        let pid = PageId::new(hf.file_id(), 0);
        {
            // Graft a structurally valid packed page of one record onto the
            // u64 file.
            let mut b = crate::codec::PackedPageBuilder::default();
            b.push(crate::record::RecordParts {
                start: 42,
                height: 3,
                tag: 9,
            });
            let mut img = [0u8; PAGE_SIZE];
            b.seal_into(&mut img);
            let mut page = p.write_page(pid).unwrap();
            page.copy_from_slice(&img);
        }
        let err = hf.scan(&p).next_record().unwrap_err();
        assert_eq!(
            err,
            PoolError::Corrupt {
                pid,
                reason: "packed page in a file of non-packable records"
            }
        );
    }

    #[test]
    fn logged_insert_delete_round_trip_with_page_recycling() {
        use crate::wal::Wal;
        let p = pool(8);
        let wal = Wal::create(&p);
        let mut hf = HeapFile::<Span>::create(&p);
        let data = spans(3 * records_per_page::<Span>() as u64 + 5);
        for r in &data {
            hf.insert_logged(&p, &wal, *r).unwrap();
        }
        assert_eq!(hf.records(), data.len() as u64);
        assert_eq!(hf.pages(), 4);
        let mut back = hf.read_all(&p).unwrap();
        back.sort_by_key(|s| s.lo);
        assert_eq!(back, data);
        // Empty out page 1 record by record: it reaches the free list.
        let per = records_per_page::<Span>();
        for r in &data[per..2 * per] {
            assert!(hf.delete_logged(&p, &wal, r).unwrap());
        }
        assert_eq!(wal.free_pages_of(hf.file_id()), vec![1]);
        assert!(
            !hf.delete_logged(&p, &wal, &data[per]).unwrap(),
            "already gone"
        );
        // Top up the partially filled tail page: inserts keep filling the
        // active page before consulting the free list.
        for i in 0..(per - 5) as u64 {
            hf.insert_logged(
                &p,
                &wal,
                Span {
                    lo: 50_000 + i,
                    hi: 50_001 + i,
                    h: 2,
                },
            )
            .unwrap();
        }
        assert_eq!(hf.pages(), 4, "top-up fits the tail page");
        assert_eq!(wal.freelist_len(), 1, "free page untouched so far");
        // The next insert needs a page: it recycles page 1 (lowest free
        // page) and keeps filling it, rather than growing the file.
        let extra = Span { lo: 1, hi: 2, h: 0 };
        hf.insert_logged(&p, &wal, extra).unwrap();
        assert_eq!(hf.pages(), 4, "no growth while free pages exist");
        assert_eq!(wal.freelist_len(), 0);
        hf.insert_logged(&p, &wal, extra).unwrap();
        assert_eq!(hf.pages(), 4);
        let all = hf.read_all(&p).unwrap();
        assert_eq!(all.len(), data.len() + 2 - 5);
        // Zone of the recycled page covers exactly the new records.
        let zones = p.file_zones(hf.file_id()).unwrap();
        let z = zones.page(1).unwrap();
        assert_eq!((z.lo, z.hi, z.min_h, z.max_h), (1, 2, 0, 0));
    }

    #[test]
    fn logged_delete_on_packed_page_reseals() {
        use crate::wal::Wal;
        let p = pool(8);
        let data = pspans(2_000);
        let mut hf = HeapFile::from_iter_with(&p, compressed(), data.iter().copied()).unwrap();
        let wal = Wal::create(&p);
        assert!(hf.delete_logged(&p, &wal, &data[3]).unwrap());
        assert!(hf.delete_logged(&p, &wal, &data[1500]).unwrap());
        let mut back = hf.read_all(&p).unwrap();
        back.sort_by_key(|s| s.start);
        let mut expect = data.clone();
        expect.remove(1500);
        expect.remove(3);
        assert_eq!(back, expect);
        // The packed tail page survives an insert untouched: the insert
        // opens a fresh raw page instead of unsealing it.
        let pages_before = hf.pages();
        hf.insert_logged(
            &p,
            &wal,
            PSpan {
                start: 9,
                h: 1,
                tag: 7,
            },
        )
        .unwrap();
        assert_eq!(hf.pages(), pages_before + 1);
        assert_eq!(hf.records(), expect.len() as u64 + 1);
    }

    #[test]
    fn open_rebuilds_handle_and_zone_map() {
        use crate::wal::Wal;
        let p = pool(8);
        let wal = Wal::create(&p);
        let mut hf = HeapFile::<Span>::create(&p);
        let data = spans(2 * records_per_page::<Span>() as u64 + 9);
        for r in &data {
            hf.insert_logged(&p, &wal, *r).unwrap();
        }
        assert!(hf.delete_logged(&p, &wal, &data[0]).unwrap());
        let reopened = HeapFile::<Span>::open(&p, hf.file_id()).unwrap();
        assert_eq!(reopened.pages(), hf.pages());
        assert_eq!(reopened.records(), hf.records());
        assert_eq!(reopened.height_bounds(), hf.height_bounds());
        let mut a = hf.read_all(&p).unwrap();
        let mut b = reopened.read_all(&p).unwrap();
        a.sort_by_key(|s| s.lo);
        b.sort_by_key(|s| s.lo);
        assert_eq!(a, b);
        // The rebuilt zone map admits exactly what a filtered scan needs.
        let zones = p.file_zones(hf.file_id()).unwrap();
        assert_eq!(zones.len(), hf.pages() as usize);
        assert!(zones.page(0).is_some());
    }

    #[test]
    fn resume_position_on_skipped_page_is_consumed() {
        // Resuming at a mid-page offset under a filter that skips that very
        // page must not carry the offset into the next admitted page.
        let p = pool(4);
        let per = records_per_page::<Span>() as u64;
        let data = spans(4 * per);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        // Page 2's key window.
        let lo = 10 * (2 * per);
        let filter = ScanFilter::RegionOverlap {
            start: lo,
            end: lo + 1,
        };
        // Resume at page 0, record 7 — pages 0 and 1 are skipped.
        let mut s = hf.scan_at_with(
            &p,
            ScanPos::at(0, 7),
            ScanOptions::default().with_filter(filter),
        );
        assert_eq!(s.next_record().unwrap(), Some(data[(2 * per) as usize]));
    }
}
