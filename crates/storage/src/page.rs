//! Page and file identifiers.

/// Size of a disk page in bytes. 4 KiB matches common filesystem blocks;
/// the paper's Minibase used 1 KiB pages — only the constant differs, all
/// cost formulas are in units of pages.
pub const PAGE_SIZE: usize = 4096;

/// A fixed-size page buffer.
pub type PageBuf = [u8; PAGE_SIZE];

/// Identifier of a file managed by a [`crate::disk::DiskBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Identifier of one page: a file and a zero-based page number within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Owning file.
    pub file: FileId,
    /// Zero-based page number within the file.
    pub page: u32,
}

impl PageId {
    /// Convenience constructor.
    #[inline]
    pub fn new(file: FileId, page: u32) -> Self {
        PageId { file, page }
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file.0, self.page)
    }
}
