//! External multiway merge sort over heap files.
//!
//! Classic two-phase sort, the "sort on the fly" cost the paper charges the
//! region-code baselines (§3.4): run formation reads `budget` pages at a
//! time, sorts them in memory and writes sorted runs; merge passes combine
//! up to `budget - 1` runs until one remains. Total I/O is
//! `2·‖R‖·(1 + ⌈log_{b-1}(runs)⌉)` pages, matching the
//! `‖R‖·2·log_b ‖R‖` term in the paper's analysis.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::access::ScanOptions;
use crate::buffer::{BufferPool, PoolError};
use crate::heap::{records_per_page, HeapFile, HeapScan, HeapWriter};
use crate::page::FileId;
use crate::record::FixedRecord;

/// Sorts `input` by `key`, using at most `budget` pages of working memory,
/// and returns a new heap file with the sorted records. The input file is
/// left untouched.
///
/// `budget` must be at least 3 (one input frame, one output frame, and one
/// spare for the merge); smaller budgets are clamped up to 3.
///
/// On error (pool exhaustion or an I/O fault — the latter carries the
/// failing page in [`PoolError::failing_page`]) every temporary file the
/// sort created is deleted before the error is returned, so a failed sort
/// leaks no disk space.
pub fn external_sort<R, K, F>(
    pool: &BufferPool,
    input: &HeapFile<R>,
    budget: usize,
    key: F,
) -> Result<HeapFile<R>, PoolError>
where
    R: FixedRecord,
    K: Ord,
    F: Fn(&R) -> K,
{
    external_sort_with(pool, input, budget, ScanOptions::default(), key)
}

/// [`external_sort`] with explicit [`ScanOptions`]. The declared depth is
/// clamped to the sort's own `budget` and *shared* across the merge fan-in
/// (each of `k` merge inputs prefetches at most `depth / k` pages), so
/// read-ahead never exceeds the memory the sort was promised — unshared,
/// `k` streams would evict each other's read-ahead and thrash.
pub fn external_sort_with<R, K, F>(
    pool: &BufferPool,
    input: &HeapFile<R>,
    budget: usize,
    opts: ScanOptions,
    key: F,
) -> Result<HeapFile<R>, PoolError>
where
    R: FixedRecord,
    K: Ord,
    F: Fn(&R) -> K,
{
    // Every file the sort creates is registered here the moment it exists,
    // so the error path can always delete the full set. Mid-sort passes
    // delete spent runs eagerly as before; re-deleting those here is a
    // documented no-op (file ids are never reused).
    let mut temps: Vec<FileId> = Vec::new();
    match sort_inner(pool, input, budget, opts, &key, &mut temps) {
        Ok(out) => Ok(out),
        Err(e) => {
            for f in temps {
                pool.delete_file(f);
            }
            Err(e)
        }
    }
}

fn sort_inner<R, K, F>(
    pool: &BufferPool,
    input: &HeapFile<R>,
    budget: usize,
    opts: ScanOptions,
    key: &F,
    temps: &mut Vec<FileId>,
) -> Result<HeapFile<R>, PoolError>
where
    R: FixedRecord,
    K: Ord,
    F: Fn(&R) -> K,
{
    let budget = budget.max(3);
    let run_capacity = budget * records_per_page::<R>();
    // Read-ahead may use at most half the sort's own page budget.
    let read = opts.clamped(budget);

    // Phase 1: run formation.
    let mut runs: Vec<HeapFile<R>> = Vec::new();
    {
        let mut scan = input.scan_with(pool, read);
        let mut chunk: Vec<R> = Vec::with_capacity(run_capacity.min(1 << 20));
        loop {
            let item = scan.next_record()?;
            if let Some(r) = item {
                chunk.push(r);
            }
            if chunk.len() == run_capacity || (item.is_none() && !chunk.is_empty()) {
                chunk.sort_by_key(key);
                let mut w = HeapWriter::create_with(pool, read.as_write())?;
                temps.push(w.file_id());
                for r in chunk.drain(..) {
                    w.push(r)?;
                }
                runs.push(w.finish()?);
            }
            if item.is_none() {
                break;
            }
        }
    }

    if runs.is_empty() {
        return HeapFile::from_iter(pool, std::iter::empty());
    }

    // Phase 2: merge passes of fan-in (budget - 1).
    let fan_in = (budget - 1).max(2);
    while runs.len() > 1 {
        let mut next: Vec<HeapFile<R>> = Vec::with_capacity(runs.len().div_ceil(fan_in));
        for group in runs.chunks(fan_in) {
            next.push(merge_runs(pool, group, read, key, temps)?);
        }
        for run in runs {
            run.drop_file(pool);
        }
        runs = next;
    }
    Ok(runs.pop().expect("at least one run"))
}

/// Merges a group of sorted runs into one sorted heap file. `opts` is the
/// budget-clamped option set; each input stream gets a `1/k` share of its
/// depth so the group's combined read-ahead stays within it.
fn merge_runs<R, K, F>(
    pool: &BufferPool,
    runs: &[HeapFile<R>],
    opts: ScanOptions,
    key: &F,
    temps: &mut Vec<FileId>,
) -> Result<HeapFile<R>, PoolError>
where
    R: FixedRecord,
    K: Ord,
    F: Fn(&R) -> K,
{
    if runs.len() == 1 {
        // Copy-through keeps ownership discipline simple (caller drops all
        // inputs); single-run groups are rare (only the last group).
        let mut w = HeapWriter::create_with(pool, opts.as_write())?;
        temps.push(w.file_id());
        let mut s = runs[0].scan_with(pool, opts);
        while let Some(r) = s.next_record()? {
            w.push(r)?;
        }
        return w.finish();
    }
    let per_stream = opts.shared(runs.len());
    let mut scans: Vec<HeapScan<'_, R>> =
        runs.iter().map(|r| r.scan_with(pool, per_stream)).collect();
    // Heap entries: (key, run index, record). Run index breaks ties
    // deterministically (stability across equal keys is not required).
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::with_capacity(scans.len());
    let mut heads: Vec<Option<R>> = Vec::with_capacity(scans.len());
    for (i, s) in scans.iter_mut().enumerate() {
        let head = s.next_record()?;
        if let Some(r) = &head {
            heap.push(Reverse((key(r), i)));
        }
        heads.push(head);
    }
    let mut out = HeapWriter::create_with(pool, opts.as_write())?;
    temps.push(out.file_id());
    while let Some(Reverse((_, i))) = heap.pop() {
        let r = heads[i].take().expect("head present for heap entry");
        out.push(r)?;
        if let Some(nxt) = scans[i].next_record()? {
            heap.push(Reverse((key(&nxt), i)));
            heads[i] = Some(nxt);
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Disk::in_memory_free(), frames)
    }

    /// Deterministic pseudo-random u64 stream.
    fn rng_stream(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn sorts_single_run() {
        let p = pool(8);
        let data = rng_stream(42, 1000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let sorted = external_sort(&p, &hf, 8, |r| *r).unwrap();
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(sorted.read_all(&p).unwrap(), expect);
    }

    #[test]
    fn sorts_with_many_merge_passes() {
        // 100k records, 3-page budget => hundreds of runs, multiple passes.
        let p = pool(8);
        let data = rng_stream(7, 100_000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let sorted = external_sort(&p, &hf, 3, |r| *r).unwrap();
        let out = sorted.read_all(&p).unwrap();
        let mut expect = data;
        expect.sort_unstable();
        assert_eq!(out, expect);
        assert_eq!(sorted.records(), 100_000);
    }

    #[test]
    fn sorts_by_custom_key_descending() {
        let p = pool(8);
        let data = rng_stream(9, 5000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let sorted = external_sort(&p, &hf, 4, |r| Reverse(*r)).unwrap();
        let out = sorted.read_all(&p).unwrap();
        let mut expect = data;
        expect.sort_unstable_by_key(|r| Reverse(*r));
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_input() {
        let p = pool(4);
        let hf = HeapFile::<u64>::from_iter(&p, std::iter::empty()).unwrap();
        let sorted = external_sort(&p, &hf, 4, |r| *r).unwrap();
        assert!(sorted.is_empty());
    }

    #[test]
    fn preserves_duplicates() {
        let p = pool(4);
        let data: Vec<u64> = (0..10_000).map(|i| i % 17).collect();
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let sorted = external_sort(&p, &hf, 3, |r| *r).unwrap();
        let out = sorted.read_all(&p).unwrap();
        assert_eq!(out.len(), 10_000);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        for v in 0..17u64 {
            assert_eq!(
                out.iter().filter(|&&x| x == v).count(),
                data.iter().filter(|&&x| x == v).count()
            );
        }
    }

    #[test]
    fn io_cost_is_linearithmic() {
        // With a generous budget (single merge pass), I/O should be about
        // 4x the file size: read + write runs, read runs + write output.
        let p = pool(64);
        let data = rng_stream(3, 200_000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        p.flush_all().unwrap();
        let before = p.io_stats();
        let sorted = external_sort(&p, &hf, 32, |r| *r).unwrap();
        p.flush_all().unwrap();
        let delta = p.io_stats().since(&before);
        let pages = hf.pages() as u64;
        assert!(
            delta.total() <= 4 * pages + 16,
            "sort I/O {} > 4 * {pages} + slack",
            delta.total()
        );
        assert_eq!(sorted.records(), hf.records());
    }

    #[test]
    fn input_file_unchanged() {
        let p = pool(4);
        let data = rng_stream(5, 3000);
        let hf = HeapFile::from_iter(&p, data.iter().copied()).unwrap();
        let _sorted = external_sort(&p, &hf, 3, |r| *r).unwrap();
        assert_eq!(hf.read_all(&p).unwrap(), data);
    }
}
